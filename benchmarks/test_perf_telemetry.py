"""Telemetry overhead benchmarks (ISSUE 3 satellite).

Two guarantees pinned here:

- **Enabled** telemetry stays under 5% replay overhead: all replay
  instrumentation is a vectorised post-pass, so the hot submission loop
  is untouched (paired alternating runs, median ratio).
- **Disabled** telemetry is a zero-allocation no-op: call sites consult
  one module global and share no-op singletons, measured by tracemalloc.
"""

import time
import tracemalloc

from repro import telemetry
from repro.loadgen import generate_request_trace, replay


class _NullBackend:
    """Accepts everything instantly: isolates the replay loop itself."""

    def invoke(self, timestamp_s, workload_id):
        pass

    def drain(self):
        return []


def test_perf_replay_telemetry_overhead(ctx):
    """Telemetry-on replay within 5% of the bare fast path.

    Runs alternate dark / observed so drift and thermal noise hit both
    arms equally, measures CPU time (``process_time``) so scheduler
    interference from a busy host cannot charge either arm, and compares
    minima -- timing noise is strictly additive, so the min of repeated
    runs is the standard estimator of each arm's true cost.
    """
    trace = generate_request_trace(ctx.spec, seed=11)
    backend = _NullBackend()
    rounds = 11

    replay(trace, backend)  # warm both code paths
    registry = telemetry.MetricsRegistry()
    with telemetry.use(registry):
        replay(trace, backend)

    dark, observed = [], []
    for _ in range(rounds):
        t0 = time.process_time()
        replay(trace, backend)
        dark.append(time.process_time() - t0)

        with telemetry.use(registry):
            t0 = time.process_time()
            replay(trace, backend)
            observed.append(time.process_time() - t0)

    ratio = min(observed) / min(dark)
    assert registry.counter("replay_requests_total").value > 0
    assert ratio < 1.05, (
        f"telemetry-enabled replay is {ratio:.3f}x the fast path "
        f"(budget 1.05x); dark={min(dark):.4f}s "
        f"observed={min(observed):.4f}s"
    )


def test_perf_replay_telemetry_throughput(benchmark, ctx):
    """Absolute floor: observed replay still clears 1M requests/s."""
    trace = generate_request_trace(ctx.spec, seed=12)
    registry = telemetry.MetricsRegistry()

    def run():
        with telemetry.use(registry):
            return replay(trace, _NullBackend())

    result = benchmark(run)
    rate = result.n_requests / benchmark.stats["mean"]
    benchmark.extra_info["observed_requests_per_cpu_second"] = rate
    assert rate > 1_000_000


def test_perf_replay_with_drift_monitor(benchmark, ctx):
    """Drift monitoring (windowed KS checks) keeps replay above 300K/s.

    The monitor does real statistics per window, so it is costlier than
    bare counters -- but must stay cheap enough to leave on by default.
    """
    from repro.telemetry import DriftMonitor

    spec = ctx.spec
    trace = generate_request_trace(spec, seed=13)
    target = spec.invocation_duration_cdf()

    def run():
        monitor = DriftMonitor(target, band=0.5, window=1024)
        result = replay(trace, _NullBackend(), drift=monitor)
        assert monitor.n_observed == trace.n_requests
        return result

    result = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    rate = result.n_requests / benchmark.stats["mean"]
    benchmark.extra_info["drift_monitored_requests_per_cpu_second"] = rate
    assert rate > 300_000


def test_disabled_telemetry_is_zero_allocation():
    """Disabled call sites allocate nothing per call.

    ``stage()`` returns a shared singleton and the null registry hands
    out shared no-op metrics, so a tight instrumented loop leaves no
    trace in tracemalloc (small slack for the tracing machinery itself).
    """
    telemetry.disable()
    null = telemetry.NULL_REGISTRY

    def instrumented_loop(n):
        for _ in range(n):
            with telemetry.stage("x"):
                pass
            reg = telemetry.active()
            if reg is not None:  # pragma: no cover - telemetry is off
                reg.counter("c").inc()
            null.counter("c").inc()
            null.gauge("g").set(1.0)
            null.histogram("h").observe(1.0)

    instrumented_loop(10)  # warm up code objects, method caches
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    instrumented_loop(10_000)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert after - before <= 512, (
        f"disabled telemetry allocated {after - before} bytes "
        "across 10k instrumented iterations"
    )


def test_disabled_stage_is_shared_singleton():
    telemetry.disable()
    assert telemetry.stage("a") is telemetry.stage("b")
