"""Property-based tests for the CPU-contention model (ISSUE 10).

Runs under Hypothesis when it is installed; a seeded-parametrization
fallback exercises the same invariants otherwise, so the suite never
silently loses this coverage.

Properties pinned:
- work conservation: with free cores (``concurrent <= cores``) no policy
  dilates or preempts -- and at the ledger level, busy cores are never
  idle while the run queue is nonempty (dilation only ever kicks in past
  the core count);
- no shrinkage: contention never makes an invocation finish earlier than
  its uncontended service time;
- fair-share weight monotonicity: raising a workload's own weight never
  increases its dilation (all else fixed);
- hybrid-histogram boundedness: per-workload state stays at
  ``n_bins + 2`` integers, and a representative histogram's TTL never
  exceeds ``n_bins * bin_width_s``.
"""

import numpy as np
import pytest

from repro.platform.cpu import (
    CpuModel,
    FairShareCpu,
    FifoCpu,
    ShortestFirstCpu,
)
from repro.platform.keepalive import HybridHistogramKeepAlive

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False

POLICIES = {
    "fifo": FifoCpu(),
    "fair": FairShareCpu(),
    "fair-weighted": FairShareCpu(weights={"w0": 3.0, "w1": 0.5}),
    "stf": ShortestFirstCpu(),
}

# Seeded fallback cases: (seed, cores, concurrent, service_s, quantum_s)
# -- always run, so the invariants stay pinned without hypothesis.
FALLBACK_CASES = [
    (0, 1, 1, 0.05, 0.02),
    (1, 1, 2, 0.05, 0.02),
    (2, 2, 2, 0.3, 0.02),
    (3, 2, 7, 0.3, 0.005),
    (4, 4, 3, 1.0, 0.1),
    (5, 4, 64, 2.5, 0.02),
    (6, 8, 9, 0.001, 0.02),
    (7, 1, 100, 10.0, 1.0),
]


def _contend(policy, service_s, *, cores, concurrent, quantum_s=0.02,
             weight=1.0, total_weight=None):
    if total_weight is None:
        total_weight = weight * concurrent
    return policy.contend(
        service_s,
        cores=cores,
        quantum_s=quantum_s,
        concurrent=concurrent,
        weight=weight,
        total_weight=total_weight,
    )


def check_work_conservation(policy, cores, concurrent, service_s,
                            quantum_s):
    """Free cores => verbatim service time and zero preemptions."""
    if concurrent <= cores:
        dilated, pre = _contend(policy, service_s, cores=cores,
                                concurrent=concurrent,
                                quantum_s=quantum_s)
        assert dilated == service_s
        assert pre == 0


def check_no_shrinkage(policy, cores, concurrent, service_s, quantum_s):
    dilated, pre = _contend(policy, service_s, cores=cores,
                            concurrent=concurrent, quantum_s=quantum_s)
    assert dilated >= service_s
    assert pre >= 0
    assert np.isfinite(dilated)


@pytest.mark.parametrize("name", sorted(POLICIES))
@pytest.mark.parametrize("case", FALLBACK_CASES,
                         ids=lambda c: f"seed{c[0]}")
def test_conservation_and_no_shrinkage_seeded(name, case):
    _, cores, concurrent, service_s, quantum_s = case
    policy = POLICIES[name]
    check_work_conservation(policy, cores, concurrent, service_s,
                            quantum_s)
    check_no_shrinkage(policy, cores, concurrent, service_s, quantum_s)


if HAVE_HYPOTHESIS:

    @settings(max_examples=200, deadline=None)
    @given(
        name=st.sampled_from(sorted(POLICIES)),
        cores=st.integers(1, 64),
        concurrent=st.integers(1, 256),
        service_s=st.floats(1e-4, 100.0, allow_nan=False,
                            allow_infinity=False),
        quantum_s=st.floats(1e-3, 1.0, allow_nan=False,
                            allow_infinity=False),
    )
    def test_conservation_and_no_shrinkage_hypothesis(
        name, cores, concurrent, service_s, quantum_s
    ):
        policy = POLICIES[name]
        check_work_conservation(policy, cores, concurrent, service_s,
                                quantum_s)
        check_no_shrinkage(policy, cores, concurrent, service_s,
                           quantum_s)

    @settings(max_examples=100, deadline=None)
    @given(
        cores=st.integers(1, 8),
        concurrent=st.integers(2, 64),
        service_s=st.floats(1e-3, 10.0, allow_nan=False,
                            allow_infinity=False),
        w_lo=st.floats(0.1, 4.0, allow_nan=False, allow_infinity=False),
        w_hi=st.floats(0.1, 4.0, allow_nan=False, allow_infinity=False),
        others=st.floats(0.5, 50.0, allow_nan=False,
                         allow_infinity=False),
    )
    def test_fair_share_weight_monotonic_hypothesis(
        cores, concurrent, service_s, w_lo, w_hi, others
    ):
        check_fair_share_monotonic(cores, concurrent, service_s,
                                   w_lo, w_hi, others)


def check_fair_share_monotonic(cores, concurrent, service_s, w_lo, w_hi,
                               others):
    """A bigger own weight never dilates more, all else equal."""
    lo, hi = sorted((w_lo, w_hi))
    policy = FairShareCpu()
    d_lo, _ = _contend(policy, service_s, cores=cores,
                       concurrent=concurrent, weight=lo,
                       total_weight=others + lo)
    d_hi, _ = _contend(policy, service_s, cores=cores,
                       concurrent=concurrent, weight=hi,
                       total_weight=others + hi)
    assert d_hi <= d_lo + 1e-12


@pytest.mark.parametrize(
    "case", [(1, 4, 0.5, 1.0, 2.0, 3.0), (2, 2, 1.0, 0.1, 0.9, 10.0),
             (3, 8, 0.01, 2.0, 2.5, 1.0), (4, 3, 3.0, 0.5, 4.0, 20.0)],
    ids=lambda c: f"case{c[0]}",
)
def test_fair_share_weight_monotonic_seeded(case):
    _, cores, service_s, w_lo, w_hi, others = case
    check_fair_share_monotonic(cores, cores + 3, service_s, w_lo, w_hi,
                               others)


def test_fair_share_weight_lookup_and_validation():
    policy = FairShareCpu(weights={"w0": 3.0}, default_weight=0.5)
    assert policy.weight("w0") == 3.0
    assert policy.weight("unknown") == 0.5
    with pytest.raises(ValueError):
        FairShareCpu(default_weight=0.0)
    with pytest.raises(ValueError):
        FairShareCpu(weights={"w0": -1.0})


def test_cpu_model_validation():
    with pytest.raises(ValueError):
        CpuModel(cores=0)
    with pytest.raises(ValueError):
        CpuModel(cores=2, quantum_s=0.0)
    model = CpuModel(cores=2)
    assert isinstance(model.policy, FifoCpu)


def test_stf_short_tasks_slip_through():
    """Tasks at or under one quantum finish uncontended under STF --
    the scx_serverless-style short-task fast path."""
    policy = ShortestFirstCpu()
    dilated, pre = _contend(policy, 0.02, cores=1, concurrent=10,
                            quantum_s=0.02)
    assert dilated == 0.02 and pre == 0
    dilated, pre = _contend(policy, 0.5, cores=1, concurrent=10,
                            quantum_s=0.02)
    assert dilated > 0.5 and pre > 0


# ---------------------------------------------------------------------------
# ledger-level work conservation: busy cores never idle while the run
# queue is nonempty (dilation only ever starts past the core count)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("name", ["fifo", "fair-weighted", "stf"])
def test_no_dilation_below_core_count_in_simulation(name, seed):
    from repro.platform import FaaSCluster, NoKeepAlive, WorkloadProfile

    profiles = {
        f"w{i}": WorkloadProfile(f"w{i}", runtime_ms=50.0 + 10 * i,
                                 memory_mb=128.0)
        for i in range(4)
    }
    rng = np.random.default_rng(seed)
    # sparse arrivals: inter-arrival >> service, so concurrency stays 1
    ts = np.cumsum(rng.uniform(0.5, 1.0, 60))
    wids = [f"w{int(i)}" for i in rng.integers(0, 4, 60)]
    cluster = FaaSCluster(
        profiles, n_nodes=2, node_memory_mb=4096.0,
        keepalive=NoKeepAlive(),
        cpu=CpuModel(cores=4, quantum_s=0.02, policy={
            "fifo": FifoCpu(),
            "fair-weighted": FairShareCpu(weights={"w0": 2.0}),
            "stf": ShortestFirstCpu(),
        }[name]),
    )
    for t, w in zip(ts.tolist(), wids):
        cluster.invoke(t, w)
    records = cluster.drain()
    for r in records:
        wid = r.workload_id
        assert r.end_s - r.start_s == pytest.approx(
            profiles[wid].runtime_ms / 1e3
        )
        assert r.preemptions == 0


# ---------------------------------------------------------------------------
# hybrid-histogram keep-alive boundedness
# ---------------------------------------------------------------------------
def _pool_ints(policy, workload_id):
    bins, oob, total = policy._hist[workload_id]
    return len(bins) + 2  # the bins plus the two counters


def check_hybrid_bounds(gaps, percentile, bin_width_s, n_bins):
    policy = HybridHistogramKeepAlive(
        percentile, bin_width_s=bin_width_s, n_bins=n_bins,
        default_ttl_s=123.0, min_observations=1, oob_threshold=1.0,
    )
    for gap in gaps:
        policy.observe_idle_gap("w", float(gap))
    # state is strictly bounded no matter how many gaps were observed
    assert _pool_ints(policy, "w") == n_bins + 2
    ttl = policy.ttl_s("w")
    bins, oob, total = policy._hist["w"]
    if total > oob:
        # representative histogram: the paper's window bound holds
        assert 0 < ttl <= n_bins * bin_width_s
    else:
        assert ttl == 123.0  # all out of bounds: conservative fallback


HYBRID_FALLBACK = [
    (0, 50, 95.0, 1.0, 16),
    (1, 500, 99.0, 0.5, 8),
    (2, 5, 50.0, 60.0, 240),
    (3, 2000, 90.0, 0.25, 4),
]


@pytest.mark.parametrize("case", HYBRID_FALLBACK,
                         ids=lambda c: f"seed{c[0]}")
def test_hybrid_histogram_bounds_seeded(case):
    seed, n, pct, width, n_bins = case
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(width * n_bins / 4.0, n)
    check_hybrid_bounds(gaps, pct, width, n_bins)


if HAVE_HYPOTHESIS:

    @settings(max_examples=100, deadline=None)
    @given(
        gaps=st.lists(st.floats(0.0, 1e4, allow_nan=False,
                                allow_infinity=False),
                      min_size=1, max_size=300),
        percentile=st.floats(1.0, 100.0),
        bin_width_s=st.floats(0.1, 120.0),
        n_bins=st.integers(1, 300),
    )
    def test_hybrid_histogram_bounds_hypothesis(gaps, percentile,
                                                bin_width_s, n_bins):
        check_hybrid_bounds(gaps, percentile, bin_width_s, n_bins)


def test_hybrid_histogram_fallbacks():
    policy = HybridHistogramKeepAlive(
        99.0, bin_width_s=1.0, n_bins=10, default_ttl_s=600.0,
        min_observations=4, oob_threshold=0.5,
    )
    # unknown workload / too few observations -> default
    assert policy.ttl_s("w") == 600.0
    for gap in (0.5, 1.5, 2.5):
        policy.observe_idle_gap("w", gap)
    assert policy.ttl_s("w") == 600.0  # 3 < min_observations
    policy.observe_idle_gap("w", 3.5)
    # p99 of {0.5, 1.5, 2.5, 3.5} sits in bin 3 -> upper edge 4.0
    assert policy.ttl_s("w") == 4.0
    # negative gaps are ignored outright
    policy.observe_idle_gap("w", -1.0)
    assert policy._hist["w"][2] == 4
    # drown the histogram in out-of-bounds gaps -> fallback again
    for _ in range(10):
        policy.observe_idle_gap("w", 1e6)
    assert policy.ttl_s("w") == 600.0


def test_hybrid_histogram_validation():
    with pytest.raises(ValueError):
        HybridHistogramKeepAlive(0.0)
    with pytest.raises(ValueError):
        HybridHistogramKeepAlive(bin_width_s=0.0)
    with pytest.raises(ValueError):
        HybridHistogramKeepAlive(n_bins=0)
    with pytest.raises(ValueError):
        HybridHistogramKeepAlive(default_ttl_s=-1.0)
    with pytest.raises(ValueError):
        HybridHistogramKeepAlive(min_observations=0)
    with pytest.raises(ValueError):
        HybridHistogramKeepAlive(oob_threshold=1.5)
