"""Tests for EM mixture fitting and trace-driven generator calibration."""

import numpy as np
import pytest

from repro.stats import MixtureFit, fit_lognormal_mixture
from repro.traces import (
    characterize_trace,
    fit_generator_from_trace,
    fit_popularity_exponent,
    synthetic_azure_trace,
)


def draw_mixture(rng, n, weights, medians, sigmas):
    which = rng.choice(len(weights), size=n, p=weights)
    mu = np.log(medians)[which]
    return rng.lognormal(mean=mu, sigma=np.array(sigmas)[which])


class TestEM:
    def test_recovers_well_separated_mixture(self):
        rng = np.random.default_rng(0)
        x = draw_mixture(rng, 20_000, [0.5, 0.5], [10.0, 1000.0],
                         [0.3, 0.3])
        fit = fit_lognormal_mixture(x, n_components=2, seed=1)
        assert fit.converged
        np.testing.assert_allclose(np.sort(fit.medians), [10.0, 1000.0],
                                   rtol=0.1)
        np.testing.assert_allclose(fit.weights, [0.5, 0.5], atol=0.05)
        np.testing.assert_allclose(fit.sigmas, [0.3, 0.3], atol=0.05)

    def test_recovers_unequal_weights(self):
        rng = np.random.default_rng(1)
        x = draw_mixture(rng, 30_000, [0.8, 0.2], [5.0, 500.0], [0.4, 0.5])
        fit = fit_lognormal_mixture(x, n_components=2, seed=2)
        assert fit.weights[0] == pytest.approx(0.8, abs=0.05)

    def test_single_component_is_lognormal_mle(self):
        rng = np.random.default_rng(2)
        x = rng.lognormal(np.log(50.0), 0.7, size=10_000)
        fit = fit_lognormal_mixture(x, n_components=1, seed=0)
        assert fit.medians[0] == pytest.approx(50.0, rel=0.05)
        assert fit.sigmas[0] == pytest.approx(0.7, rel=0.05)

    def test_weighted_fit_shifts_toward_heavy_samples(self):
        rng = np.random.default_rng(3)
        x = np.concatenate([
            rng.lognormal(np.log(10.0), 0.2, 1000),
            rng.lognormal(np.log(1000.0), 0.2, 1000),
        ])
        w = np.concatenate([np.full(1000, 100.0), np.ones(1000)])
        fit = fit_lognormal_mixture(x, n_components=2, weights=w, seed=0)
        # weighting makes the short component carry ~99% of the mass
        assert fit.weights[0] > 0.9

    def test_log_likelihood_monotone_ish(self):
        rng = np.random.default_rng(4)
        x = draw_mixture(rng, 5_000, [0.6, 0.4], [20.0, 400.0], [0.5, 0.5])
        fit1 = fit_lognormal_mixture(x, n_components=1, seed=0)
        fit2 = fit_lognormal_mixture(x, n_components=2, seed=0)
        assert fit2.log_likelihood >= fit1.log_likelihood

    def test_sample_roundtrip(self):
        fit = MixtureFit(
            weights=np.array([0.3, 0.7]),
            medians=np.array([10.0, 200.0]),
            sigmas=np.array([0.2, 0.2]),
            log_likelihood=0.0, n_iterations=1, converged=True,
        )
        s = fit.sample(20_000, np.random.default_rng(5))
        short = (s < 50.0).mean()
        assert short == pytest.approx(0.3, abs=0.03)

    def test_to_components(self):
        fit = MixtureFit(
            weights=np.array([1.0]), medians=np.array([42.0]),
            sigmas=np.array([0.5]), log_likelihood=0.0,
            n_iterations=1, converged=True,
        )
        comps = fit.to_components()
        assert comps[0].median_ms == 42.0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least"):
            fit_lognormal_mixture([1.0], n_components=3)
        with pytest.raises(ValueError, match="positive"):
            fit_lognormal_mixture([1.0, -1.0, 2.0], n_components=1)
        with pytest.raises(ValueError, match="match"):
            fit_lognormal_mixture([1.0, 2.0], n_components=1,
                                  weights=[1.0])
        with pytest.raises(ValueError):
            fit_lognormal_mixture([1.0, 2.0], n_components=0)
        with pytest.raises(ValueError):
            MixtureFit(np.array([1.0]), np.array([1.0]), np.array([0.1]),
                       0.0, 1, True).sample(0, np.random.default_rng(0))

    def test_deterministic(self):
        rng = np.random.default_rng(6)
        x = rng.lognormal(2.0, 1.0, 2000)
        a = fit_lognormal_mixture(x, n_components=2, seed=7)
        b = fit_lognormal_mixture(x, n_components=2, seed=7)
        np.testing.assert_allclose(a.medians, b.medians)


class TestPopularityExponent:
    def test_recovers_zipf_slope(self):
        ranks = np.arange(1, 5001, dtype=float)
        counts = 1e9 * ranks**-1.6
        s = fit_popularity_exponent(counts)
        assert s == pytest.approx(1.6, abs=0.05)

    def test_on_synthetic_azure(self):
        trace = synthetic_azure_trace(n_functions=4000, seed=9)
        s = fit_popularity_exponent(trace.invocations_per_function)
        # the generator uses exponent 1.6 with jitter
        assert 1.2 <= s <= 2.0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 10"):
            fit_popularity_exponent(np.arange(5) + 1)
        with pytest.raises(ValueError, match="head_fraction"):
            fit_popularity_exponent(np.arange(100) + 1.0,
                                    head_fraction=0.0)


class TestGeneratorFit:
    def test_fit_from_synthetic_azure_matches_calibration(self):
        trace = synthetic_azure_trace(n_functions=6000, seed=10)
        fitted = fit_generator_from_trace(trace, seed=10)
        comps = fitted["duration_mixture"]
        assert len(comps) == 3
        medians = sorted(c.median_ms for c in comps)
        # the shipped calibration is (120, 1000, 8000) ms
        assert 30 <= medians[0] <= 400
        assert 300 <= medians[1] <= 3000
        assert 2500 <= medians[2] <= 30000

    def test_refit_generator_reproduces_cdf(self):
        """The loop closes: fit a trace, synthesise from the fit, and the
        duration CDFs agree."""
        from repro.stats import EmpiricalCDF, ks_distance
        from repro.traces.synth import sample_duration_mixture

        trace = synthetic_azure_trace(n_functions=6000, seed=11)
        fitted = fit_generator_from_trace(trace, seed=11)
        rng = np.random.default_rng(12)
        regen = sample_duration_mixture(
            6000, fitted["duration_mixture"], rng,
            lo_ms=1.0, hi_ms=600_000.0,
        )
        ks = ks_distance(EmpiricalCDF.from_samples(regen),
                         EmpiricalCDF.from_samples(trace.durations_ms))
        assert ks < 0.05


class TestCharacterize:
    def test_summary_fields(self):
        trace = synthetic_azure_trace(n_functions=1000, seed=13)
        info = characterize_trace(trace)
        assert info["n_functions"] == 1000
        assert info["total_invocations"] == trace.total_invocations
        assert 0.4 <= info["duration_ms"]["frac_subsecond"] <= 0.6
        assert info["popularity"]["top8pct_share"] > 0.9
        assert info["weighted_median_duration_ms"] > 0
        assert info["reports_memory"] is True

    def test_cli_trace_info(self, capsys):
        from repro.cli import main

        rc = main(["trace-info", "--functions", "600", "--fit",
                   "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "popularity" in out
        assert "fitted duration mixture" in out
