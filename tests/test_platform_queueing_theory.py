"""Queueing-theory validation of the discrete-event simulator.

Cross-checks the event engine against closed-form results: constraining a
node's memory so exactly one sandbox fits turns it into a single-server
FIFO queue, so with Poisson arrivals and deterministic service the mean
queueing delay must follow the M/D/1 Pollaczek-Khinchine formula

    Wq = rho / (2 * (1 - rho)) * service_time .

Agreement here validates arrival handling, the event heap, FIFO backlog
order, and service accounting in one shot.
"""

import numpy as np
import pytest

from repro.loadgen.requests import RequestTrace
from repro.loadgen.replay import replay
from repro.platform import FaaSCluster, FixedKeepAlive, WorkloadProfile


def poisson_trace(rate_rps, horizon_s, seed):
    rng = np.random.default_rng(seed)
    n = int(rate_rps * horizon_s * 1.3 + 100)
    times = np.cumsum(rng.exponential(1.0 / rate_rps, size=n))
    times = times[times < horizon_s]
    k = times.size
    return RequestTrace(
        timestamps_s=times,
        workload_ids=np.full(k, "w"),
        function_ids=np.full(k, "f"),
        runtimes_ms=np.full(k, 1.0),
        families=np.full(k, "fam"),
    )


def single_server_cluster(service_ms):
    profiles = {
        "w": WorkloadProfile("w", runtime_ms=service_ms, memory_mb=900.0)
    }
    # 900 MiB sandbox on a 1000 MiB node: one sandbox, ever.
    return FaaSCluster(
        profiles, n_nodes=1, node_memory_mb=1000.0,
        keepalive=FixedKeepAlive(1e9),
        cold_start_model=lambda p: 0.0,  # pure queueing, no boot noise
    )


class TestMD1:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_mean_wait_matches_pollaczek_khinchine(self, rho):
        service_s = 0.05
        rate = rho / service_s
        horizon = 4000.0  # long run for tight averages
        trace = poisson_trace(rate, horizon, seed=int(rho * 100))
        cluster = single_server_cluster(service_s * 1e3)
        result = replay(trace, cluster)
        # discard warm-up fifth
        waits = np.array(
            [r.queueing_ms for r in result.records
             if r.arrival_s > horizon / 5]
        ) / 1e3
        expected = rho / (2.0 * (1.0 - rho)) * service_s
        assert waits.mean() == pytest.approx(expected, rel=0.15)

    def test_low_utilisation_no_queueing(self):
        trace = poisson_trace(0.5, 500.0, seed=1)  # rho = 0.025
        cluster = single_server_cluster(50.0)
        result = replay(trace, cluster)
        waits = result.latencies_ms() - 50.0
        assert np.median(waits) == pytest.approx(0.0, abs=1e-6)

    def test_utilisation_matches_rho(self):
        rho = 0.7
        service_s = 0.02
        trace = poisson_trace(rho / service_s, 1000.0, seed=2)
        cluster = single_server_cluster(service_s * 1e3)
        result = replay(trace, cluster)
        busy_time = sum(r.service_ms for r in result.records) / 1e3
        span = max(r.end_s for r in result.records)
        assert busy_time / span == pytest.approx(rho, rel=0.05)

    def test_fifo_order_preserved(self):
        # back-to-back arrivals on a busy server must start in order
        trace = RequestTrace(
            timestamps_s=np.array([0.0, 0.01, 0.02, 0.03]),
            workload_ids=np.full(4, "w"),
            function_ids=np.full(4, "f"),
            runtimes_ms=np.full(4, 1.0),
            families=np.full(4, "fam"),
        )
        cluster = single_server_cluster(100.0)
        result = replay(trace, cluster)
        starts = [r.start_s for r in sorted(result.records,
                                            key=lambda r: r.arrival_s)]
        assert starts == sorted(starts)


class TestLittlesLaw:
    def test_l_equals_lambda_w(self):
        """Little's law over the whole run: mean in-system count equals
        arrival rate times mean time in system."""
        rho = 0.5
        service_s = 0.04
        rate = rho / service_s
        trace = poisson_trace(rate, 2000.0, seed=3)
        cluster = single_server_cluster(service_s * 1e3)
        result = replay(trace, cluster)
        records = result.records
        span = max(r.end_s for r in records)
        w_mean = float(np.mean([r.end_s - r.arrival_s for r in records]))
        # time-average number in system via integral of presence
        presence = sum(r.end_s - r.arrival_s for r in records) / span
        lam = len(records) / span
        assert presence == pytest.approx(lam * w_mean, rel=1e-9)
        # and the M/D/1 prediction for W = Wq + D holds
        expected_w = rho / (2 * (1 - rho)) * service_s + service_s
        assert w_mean == pytest.approx(expected_w, rel=0.15)
