"""Tests for the FaaS cluster simulator, keep-alive, schedulers, metrics."""

import numpy as np
import pytest

from repro.platform import (
    FaaSCluster,
    FixedKeepAlive,
    HashAffinityScheduler,
    HistogramKeepAlive,
    InvocationRecord,
    LeastLoadedScheduler,
    NoKeepAlive,
    RandomScheduler,
    WorkloadProfile,
    profiles_from_spec,
    summarize,
)


def profiles(**overrides):
    base = {
        "fast": WorkloadProfile("fast", runtime_ms=10.0, memory_mb=100.0),
        "slow": WorkloadProfile("slow", runtime_ms=1000.0, memory_mb=500.0),
    }
    base.update(overrides)
    return base


def cluster(**kw):
    defaults = dict(n_nodes=2, node_memory_mb=2000.0)
    defaults.update(kw)
    return FaaSCluster(profiles(), **defaults)


class TestLifecycle:
    def test_first_invocation_cold(self):
        c = cluster()
        c.invoke(0.0, "fast")
        records = c.drain()
        assert len(records) == 1
        assert records[0].cold

    def test_second_invocation_warm_within_ttl(self):
        c = cluster(keepalive=FixedKeepAlive(60.0))
        c.invoke(0.0, "fast")
        c.invoke(5.0, "fast")
        records = c.drain()
        assert [r.cold for r in records] == [True, False]
        # warm start has no cold-start delay
        assert records[1].start_s == pytest.approx(5.0)

    def test_expired_sandbox_is_cold_again(self):
        c = cluster(keepalive=FixedKeepAlive(10.0))
        c.invoke(0.0, "fast")
        c.invoke(100.0, "fast")  # far beyond ttl
        records = c.drain()
        assert [r.cold for r in records] == [True, True]

    def test_no_keepalive_always_cold(self):
        c = cluster(keepalive=NoKeepAlive())
        for t in (0.0, 1.0, 2.0):
            c.invoke(t, "fast")
        assert all(r.cold for r in c.drain())

    def test_cold_start_latency_model(self):
        c = cluster()
        c.invoke(0.0, "fast")
        r = c.drain()[0]
        expected_cs = 0.150 + 0.0008 * 100.0
        assert r.start_s == pytest.approx(expected_cs)
        assert r.end_s == pytest.approx(expected_cs + 0.010)

    def test_concurrent_requests_scale_out_sandboxes(self):
        c = cluster(n_nodes=1)
        # two overlapping slow invocations need two sandboxes
        c.invoke(0.0, "slow")
        c.invoke(0.1, "slow")
        records = c.drain()
        assert all(r.cold for r in records)  # separate sandboxes
        assert records[1].start_s < records[0].end_s  # truly concurrent

    def test_out_of_order_submission_rejected(self):
        c = cluster()
        c.invoke(10.0, "fast")
        with pytest.raises(ValueError, match="past"):
            c.invoke(5.0, "fast")

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="no profile"):
            cluster().invoke(0.0, "nope")


class TestMemoryPressure:
    def test_eviction_under_pressure(self):
        # node fits 2 sandboxes of 500; third workload evicts the LRU idle
        profs = {
            f"w{i}": WorkloadProfile(f"w{i}", runtime_ms=10.0,
                                     memory_mb=500.0)
            for i in range(3)
        }
        c = FaaSCluster(profs, n_nodes=1, node_memory_mb=1000.0,
                        keepalive=FixedKeepAlive(3600.0))
        c.invoke(0.0, "w0")
        c.invoke(1.0, "w1")
        c.invoke(2.0, "w2")   # must evict w0 (least recently used)
        c.invoke(3.0, "w1")   # w1 still warm
        c.invoke(4.0, "w0")   # w0 was evicted -> cold again
        records = c.drain()
        colds = {(r.workload_id, r.arrival_s): r.cold for r in records}
        assert colds[("w2", 2.0)] is True
        assert colds[("w1", 3.0)] is False
        assert colds[("w0", 4.0)] is True

    def test_queueing_when_no_memory(self):
        profs = {"big": WorkloadProfile("big", runtime_ms=100.0,
                                        memory_mb=800.0)}
        c = FaaSCluster(profs, n_nodes=1, node_memory_mb=1000.0,
                        keepalive=NoKeepAlive())
        c.invoke(0.0, "big")
        c.invoke(0.001, "big")  # no room for a second sandbox -> queues
        records = c.drain()
        assert len(records) == 2
        second = records[1]
        assert second.queueing_ms > 50.0  # waited for the first to finish

    def test_oversized_workload_rejected_at_construction(self):
        profs = {"huge": WorkloadProfile("huge", 1.0, 10_000.0)}
        with pytest.raises(ValueError, match="exceeds node memory"):
            FaaSCluster(profs, n_nodes=1, node_memory_mb=1000.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FaaSCluster(profiles(), n_nodes=0)
        with pytest.raises(ValueError):
            FaaSCluster(profiles(), node_memory_mb=0.0)
        with pytest.raises(ValueError):
            FaaSCluster({})

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("w", runtime_ms=0.0, memory_mb=1.0)
        with pytest.raises(ValueError):
            WorkloadProfile("w", runtime_ms=1.0, memory_mb=0.0)


class TestKeepAlivePolicies:
    def test_fixed_ttl(self):
        assert FixedKeepAlive(42.0).ttl_s("anything") == 42.0
        with pytest.raises(ValueError):
            FixedKeepAlive(-1.0)

    def test_no_keepalive_zero(self):
        assert NoKeepAlive().ttl_s("x") == 0.0

    def test_histogram_defaults_until_warm(self):
        ka = HistogramKeepAlive(percentile=90, default_ttl_s=300.0,
                                min_observations=3)
        assert ka.ttl_s("w") == 300.0
        ka.observe_idle_gap("w", 5.0)
        ka.observe_idle_gap("w", 6.0)
        assert ka.ttl_s("w") == 300.0  # still below min observations
        ka.observe_idle_gap("w", 7.0)
        assert ka.ttl_s("w") != 300.0

    def test_histogram_percentile_clamped(self):
        ka = HistogramKeepAlive(percentile=100, min_ttl_s=10.0,
                                max_ttl_s=100.0, min_observations=1)
        ka.observe_idle_gap("w", 1e6)
        assert ka.ttl_s("w") == 100.0
        ka2 = HistogramKeepAlive(percentile=50, min_ttl_s=10.0,
                                 min_observations=1)
        ka2.observe_idle_gap("v", 0.001)
        assert ka2.ttl_s("v") == 10.0

    def test_histogram_tracks_gap_distribution(self):
        ka = HistogramKeepAlive(percentile=90, min_observations=4,
                                min_ttl_s=0.0, max_ttl_s=1e9)
        for gap in [10.0] * 9 + [1000.0]:
            ka.observe_idle_gap("w", gap)
        assert 10.0 <= ka.ttl_s("w") <= 1000.0

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            HistogramKeepAlive(percentile=0)
        with pytest.raises(ValueError):
            HistogramKeepAlive(min_ttl_s=5, max_ttl_s=1)
        with pytest.raises(ValueError):
            HistogramKeepAlive(window=0)

    def test_histogram_reduces_memory_holding_vs_fixed(self):
        """Adaptive TTL reclaims quickly for frequently-invoked functions."""
        ka = HistogramKeepAlive(percentile=90, min_observations=2,
                                min_ttl_s=1.0)
        for _ in range(10):
            ka.observe_idle_gap("hot", 2.0)
        assert ka.ttl_s("hot") < FixedKeepAlive(600.0).ttl_s("hot")


class TestSchedulers:
    def _nodes(self, loads):
        from repro.platform.simulator import Node

        nodes = [Node(i, 1000.0) for i in range(len(loads))]
        for n, load in zip(nodes, loads):
            n.busy_count = load
        return nodes

    def test_least_loaded(self):
        nodes = self._nodes([3, 1, 2])
        assert LeastLoadedScheduler().pick(nodes, "w") == 1

    def test_random_in_range_and_seeded(self):
        nodes = self._nodes([0, 0, 0, 0])
        picks_a = [RandomScheduler(7).pick(nodes, "w") for _ in range(5)]
        s = RandomScheduler(7)
        picks_b = [s.pick(nodes, "w") for _ in range(5)]
        assert all(0 <= p < 4 for p in picks_b)
        assert picks_a[0] == picks_b[0]

    def test_hash_affinity_sticky(self):
        nodes = self._nodes([0, 0, 0])
        s = HashAffinityScheduler()
        assert s.pick(nodes, "wX") == s.pick(nodes, "wX")

    def test_hash_affinity_spills_under_load(self):
        nodes = self._nodes([0, 0, 0])
        s = HashAffinityScheduler(spill_threshold=2)
        home = s.pick(nodes, "wY")
        nodes[home].busy_count = 5
        assert s.pick(nodes, "wY") != home

    def test_hash_affinity_validation(self):
        with pytest.raises(ValueError):
            HashAffinityScheduler(spill_threshold=0)


class TestMetrics:
    def test_record_validation(self):
        with pytest.raises(ValueError, match="timeline"):
            InvocationRecord("w", 0, 1.0, 0.5, 2.0, False)

    def test_record_derived(self):
        r = InvocationRecord("w", 0, 1.0, 1.2, 1.5, True)
        assert r.latency_ms == pytest.approx(500.0)
        assert r.queueing_ms == pytest.approx(200.0)
        assert r.service_ms == pytest.approx(300.0)

    def test_summarize(self):
        records = [
            InvocationRecord("w", i % 2, float(i), float(i) + 0.1,
                             float(i) + 0.2, i == 0)
            for i in range(10)
        ]
        s = summarize(records)
        assert s["n_invocations"] == 10
        assert s["cold_fraction"] == pytest.approx(0.1)
        assert s["latency_ms"]["p50"] == pytest.approx(200.0)
        assert set(s["per_node_invocations"]) == {0, 1}

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestEndToEnd:
    def test_replay_generated_load_through_simulator(self):
        from repro.core import shrink
        from repro.loadgen import generate_request_trace, replay
        from repro.traces import synthetic_azure_trace
        from repro.workloads import build_default_pool

        trace = synthetic_azure_trace(n_functions=500, seed=9)
        pool = build_default_pool()
        spec = shrink(trace, pool, max_rps=3.0, duration_minutes=10, seed=9)
        req_trace = generate_request_trace(spec, seed=9)
        backend = FaaSCluster(
            profiles_from_spec(spec), n_nodes=8, node_memory_mb=16_384.0
        )
        result = replay(req_trace, backend)
        summary = summarize(result.records)
        assert summary["n_invocations"] == req_trace.n_requests
        assert 0.0 < summary["cold_fraction"] < 1.0
        assert result.cold_start_fraction() == summary["cold_fraction"]
        assert result.latencies_ms().size == req_trace.n_requests

    def test_live_backend_runs_real_code(self):
        from repro.loadgen import replay
        from repro.loadgen.requests import RequestTrace
        from repro.platform import LiveBackend
        from repro.workloads import Workload, WorkloadPool

        pool = WorkloadPool([
            Workload("pyaes:t", "pyaes", {"length": 64, "rounds": 1},
                     1.0, 28.0),
            Workload("matmul:t", "matmul", {"n": 16, "reps": 1}, 1.0, 32.0),
        ])
        t = RequestTrace(
            timestamps_s=np.array([0.0, 0.0, 0.0]),
            workload_ids=np.array(["pyaes:t", "matmul:t", "pyaes:t"]),
            function_ids=np.array(["f", "f", "f"]),
            runtimes_ms=np.array([1.0, 1.0, 1.0]),
            families=np.array(["pyaes", "matmul", "pyaes"]),
        )
        backend = LiveBackend(pool)
        result = replay(t, backend)
        assert result.n_requests == 3
        colds = [r.cold for r in result.records]
        assert colds == [True, True, False]  # pyaes warm on second call
        assert all(r.latency_ms > 0 for r in result.records)


class TestLiveBackendBoundedGrowth:
    """The two unbounded stores in LiveBackend are cappable: a record
    sink replaces in-memory record accumulation and the payload cache
    evicts LRU entries past ``max_cached_payloads``."""

    @staticmethod
    def _pool():
        from repro.workloads import Workload, WorkloadPool

        return WorkloadPool([
            Workload("pyaes:t", "pyaes", {"length": 64, "rounds": 1},
                     1.0, 28.0),
            Workload("matmul:t", "matmul", {"n": 16, "reps": 1}, 1.0, 32.0),
            Workload("matmul:u", "matmul", {"n": 8, "reps": 1}, 1.0, 30.0),
        ])

    def test_record_sink_streams_instead_of_accumulating(self):
        from repro.platform import LiveBackend

        streamed = []
        backend = LiveBackend(self._pool(), record_sink=streamed.append)
        for i in range(4):
            backend.invoke(float(i), "pyaes:t")
        assert backend.records == []
        assert backend.drain() == []
        assert len(streamed) == 4
        assert [r.cold for r in streamed] == [True, False, False, False]

    def test_payload_cache_evicts_lru_and_reruns_cold(self):
        from repro.platform import LiveBackend

        backend = LiveBackend(self._pool(), max_cached_payloads=2)
        backend.invoke(0.0, "pyaes:t")    # cache: pyaes
        backend.invoke(1.0, "matmul:t")   # cache: pyaes, matmul:t
        backend.invoke(2.0, "pyaes:t")    # warm hit -> pyaes now MRU
        backend.invoke(3.0, "matmul:u")   # evicts matmul:t (LRU)
        assert backend.evictions == 1
        backend.invoke(4.0, "matmul:t")   # cold again after eviction
        colds = [(r.workload_id, r.cold) for r in backend.records]
        assert colds == [
            ("pyaes:t", True),
            ("matmul:t", True),
            ("pyaes:t", False),
            ("matmul:u", True),
            ("matmul:t", True),
        ]
        assert backend.evictions == 2  # matmul:t's return evicted pyaes

    def test_unbounded_by_default(self):
        from repro.platform import LiveBackend

        backend = LiveBackend(self._pool())
        for wid in ("pyaes:t", "matmul:t", "matmul:u", "pyaes:t"):
            backend.invoke(0.0, wid)
        assert backend.evictions == 0
        assert len(backend.records) == 4

    def test_cache_cap_validation(self):
        from repro.platform import LiveBackend

        with pytest.raises(ValueError, match="max_cached_payloads"):
            LiveBackend(self._pool(), max_cached_payloads=0)
