"""Property tests for the band-KS fidelity metric and window finders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import ks_statistic_samples
from repro.stats.distance import ks_relative_band


class TestBandKsProperties:
    @given(st.lists(st.floats(0.1, 1e5), min_size=2, max_size=60),
           st.integers(0, 1000))
    @settings(max_examples=60)
    def test_zero_for_sub_tolerance_relocation(self, y, seed):
        """Relocating every sample by < tolerance costs exactly zero."""
        rng = np.random.default_rng(seed)
        yv = np.array(y)
        shifts = rng.uniform(-0.09, 0.09, size=yv.size)
        x = yv * (1.0 + shifts)
        assert ks_relative_band(x, yv, rel_tolerance=0.1) == 0.0

    @given(st.lists(st.floats(0.1, 1e5), min_size=2, max_size=60),
           st.lists(st.floats(0.1, 1e5), min_size=2, max_size=60))
    @settings(max_examples=60)
    def test_bounded_by_plain_ks(self, x, y):
        """The band statistic never exceeds the plain KS statistic."""
        band = ks_relative_band(x, y, rel_tolerance=0.1)
        plain = ks_statistic_samples(x, y)
        assert 0.0 <= band <= plain + 1e-12

    @given(st.lists(st.floats(0.1, 1e5), min_size=2, max_size=40))
    @settings(max_examples=40)
    def test_identity_is_zero(self, y):
        assert ks_relative_band(y, y) == 0.0

    def test_charges_mass_beyond_tolerance(self):
        # 40% atom moved 50%: charged in full
        y = np.array([100.0] * 40 + [1000.0] * 60)
        x = np.array([150.0] * 40 + [1000.0] * 60)
        assert ks_relative_band(x, y, rel_tolerance=0.1) == pytest.approx(
            0.4)

    def test_charges_created_mass(self):
        y = np.array([100.0] * 100)
        x = np.array([100.0] * 50 + [10_000.0] * 50)
        assert ks_relative_band(x, y) == pytest.approx(0.5)

    def test_heavy_atom_near_neighbour_not_confused(self):
        """The failure mode that broke snapping: a reference neighbour
        closer to the mapped value than the atom's origin."""
        y = np.array([1475.5] * 46 + [1488.15] + [100.0] * 53)
        x = np.array([1487.86] * 46 + [1488.15] + [100.0] * 53)
        # 1475.5 -> 1487.86 is a 0.84% move: inside the band, zero cost
        assert ks_relative_band(x, y, rel_tolerance=0.1) == 0.0

    def test_weighted(self):
        y = np.array([10.0, 1000.0])
        x = np.array([10.0, 1000.0])
        yw = np.array([9.0, 1.0])
        xw = np.array([1.0, 9.0])  # same support, very different weights
        assert ks_relative_band(x, y, x_weights=xw, y_weights=yw) \
            == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            ks_relative_band([1.0], [1.0], rel_tolerance=0.0)
        with pytest.raises(ValueError):
            ks_relative_band([-1.0], [1.0])
        with pytest.raises(ValueError):
            ks_relative_band([1.0], [0.0])

    def test_deprecated_alias(self):
        from repro.stats.distance import ks_log_quantized

        assert ks_log_quantized is ks_relative_band


class TestWindowProperties:
    @given(st.integers(0, 500), st.integers(2, 20), st.integers(20, 120))
    @settings(max_examples=40, deadline=None)
    def test_busiest_window_is_argmax(self, seed, duration, minutes):
        from repro.traces import Trace, find_busiest_window

        rng = np.random.default_rng(seed)
        per_minute = rng.integers(0, 40, (4, minutes)).astype(np.int64)
        trace = Trace(
            f"p{seed}", np.array([f"f{i}" for i in range(4)]),
            np.array(["a"] * 4), np.full(4, 10.0), per_minute,
        )
        duration = min(duration, minutes)
        start = find_busiest_window(trace, duration)
        agg = trace.aggregate_per_minute
        best = agg[start:start + duration].sum()
        for s in range(minutes - duration + 1):
            assert agg[s:s + duration].sum() <= best

    @given(st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_quietest_never_busier_than_busiest(self, seed):
        from repro.traces import (
            find_busiest_window,
            find_quietest_window,
            synthetic_azure_trace,
        )

        trace = synthetic_azure_trace(n_functions=60, seed=seed)
        agg = trace.aggregate_per_minute
        b = find_busiest_window(trace, 30)
        q = find_quietest_window(trace, 30)
        assert agg[q:q + 30].sum() <= agg[b:b + 30].sum()
