"""Tests for the platform realism extensions and the In-Vitro baseline."""

import numpy as np
import pytest

from repro.platform import (
    FaaSCluster,
    FixedKeepAlive,
    WorkloadProfile,
    memory_utilization,
    per_workload_cold_rates,
)


def profiles():
    return {
        "fast": WorkloadProfile("fast", runtime_ms=10.0, memory_mb=100.0),
        "slow": WorkloadProfile("slow", runtime_ms=500.0, memory_mb=400.0),
    }


class TestServiceVariability:
    def test_zero_cv_deterministic(self):
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=2000.0)
        c.invoke(0.0, "fast")
        r = c.drain()[0]
        assert r.service_ms == pytest.approx(10.0)

    def test_cv_produces_spread_with_right_mean(self):
        services = []
        c = FaaSCluster(profiles(), n_nodes=4, node_memory_mb=8000.0,
                        service_time_cv=0.5, seed=1)
        for k in range(400):
            c.invoke(k * 1.0, "fast")
        services = np.array([r.service_ms for r in c.drain()])
        assert services.std() > 1.0
        assert services.mean() == pytest.approx(10.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaaSCluster(profiles(), service_time_cv=-0.1)
        with pytest.raises(ValueError):
            FaaSCluster(profiles(), cores_per_node=0)


class TestCpuContention:
    def test_oversubscription_slows_service(self):
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=8000.0,
                        cores_per_node=1)
        c.invoke(0.0, "slow")
        c.invoke(0.01, "slow")  # second concurrent invocation: 2x slowdown
        records = c.drain()
        assert records[0].service_ms == pytest.approx(500.0)
        assert records[1].service_ms == pytest.approx(1000.0)

    def test_within_capacity_no_slowdown(self):
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=8000.0,
                        cores_per_node=8)
        c.invoke(0.0, "slow")
        c.invoke(0.01, "slow")
        for r in c.drain():
            assert r.service_ms == pytest.approx(500.0)


class TestMemoryTracking:
    def test_samples_recorded(self):
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=2000.0,
                        keepalive=FixedKeepAlive(5.0), track_memory=True)
        c.invoke(0.0, "fast")
        c.invoke(100.0, "fast")  # first sandbox expired in between
        c.drain()
        assert len(c.memory_samples) >= 3  # 2 admissions + >=1 reclaim
        used = [u for _, _, u in c.memory_samples]
        assert max(used) == pytest.approx(100.0)

    def test_memory_utilization_summary(self):
        samples = [(0.0, 0, 100.0), (10.0, 0, 300.0), (20.0, 0, 100.0)]
        util = memory_utilization(samples, node_capacity_mb=1000.0)
        # time-weighted: 100 for 10s, 300 for 10s -> mean 200 / 1000
        assert util["per_node"][0] == pytest.approx(0.2)
        assert util["peak_mb"] == 300.0

    def test_memory_utilization_validation(self):
        with pytest.raises(ValueError):
            memory_utilization([], 100.0)
        with pytest.raises(ValueError):
            memory_utilization([(0.0, 0, 1.0)], 0.0)

    def test_single_sample_node(self):
        util = memory_utilization([(5.0, 1, 50.0)], 100.0)
        assert util["per_node"][1] == pytest.approx(0.5)


class TestPerWorkloadColdRates:
    def test_rates(self):
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=8000.0,
                        keepalive=FixedKeepAlive(3600.0))
        for t in (0.0, 1.0, 2.0, 3.0):
            c.invoke(t, "fast")
        c.invoke(4.0, "slow")
        rates = per_workload_cold_rates(c.drain())
        assert rates["fast"] == pytest.approx(0.25)
        assert rates["slow"] == 1.0

    def test_min_invocations_filter(self):
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=8000.0)
        c.invoke(0.0, "fast")
        rates = per_workload_cold_rates(c.drain(), min_invocations=2)
        assert rates == {}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            per_workload_cold_rates([])


class TestInVitroBaseline:
    @pytest.fixture(scope="class")
    def azure(self):
        from repro.traces import synthetic_azure_trace

        return synthetic_azure_trace(n_functions=1200, seed=44)

    def test_spec_shape(self, azure):
        from repro.baselines import invitro_spec

        spec = invitro_spec(azure, 60, 20_000, 30, seed=0)
        assert spec.total_requests == 20_000
        assert spec.n_functions == 60
        assert spec.metadata["baseline"] == "invitro"

    def test_single_synthetic_family(self, azure):
        from repro.baselines import invitro_spec

        spec = invitro_spec(azure, 40, 5_000, 20, seed=1)
        assert {e.family for e in spec.entries} == {"busyloop"}

    def test_more_representative_than_random(self, azure):
        """In-Vitro's selling point: the chosen sample's duration CDF is
        closer to the trace's than a plain random sample's (on average)."""
        from repro.baselines import invitro_spec
        from repro.stats import ks_statistic_samples

        spec = invitro_spec(azure, 80, 5_000, 20, seed=2, n_candidates=64)
        iv_ks = ks_statistic_samples(
            [e.runtime_ms for e in spec.entries], azure.durations_ms)
        rng = np.random.default_rng(2)
        random_ks = np.mean([
            ks_statistic_samples(
                azure.durations_ms[
                    rng.choice(azure.n_functions, 80, replace=False)],
                azure.durations_ms)
            for _ in range(20)
        ])
        assert iv_ks < random_ks

    def test_representativity_score_recorded(self, azure):
        from repro.baselines import invitro_spec

        spec = invitro_spec(azure, 50, 2_000, 15, seed=3)
        assert 0.0 <= spec.metadata["representativity_score"] < 2.0

    def test_window_defaults_to_busiest(self, azure):
        from repro.baselines import invitro_spec

        spec = invitro_spec(azure, 50, 2_000, 15, seed=4)
        start = spec.metadata["window_start_minute"]
        agg = azure.aggregate_per_minute
        windows = np.convolve(agg, np.ones(15), "valid")
        assert windows[start] == windows.max()

    def test_validation(self, azure):
        from repro.baselines import invitro_spec

        with pytest.raises(ValueError):
            invitro_spec(azure, 0, 100, 10)
        with pytest.raises(ValueError):
            invitro_spec(azure, 10, 0, 10)
        with pytest.raises(ValueError):
            invitro_spec(azure, 10, 100, 10_000)
        with pytest.raises(ValueError):
            invitro_spec(azure, 10, 100, 10, n_candidates=0)
