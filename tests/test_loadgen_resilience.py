"""Tests for the resilient replay engine: retries, breaker, checkpoints."""

import numpy as np
import pytest

from repro.loadgen import (
    OUTCOMES,
    CircuitBreaker,
    RequestTrace,
    RetryPolicy,
    load_checkpoint,
    replay,
    save_checkpoint,
)
from repro.platform import (
    FaultProfile,
    FaultyBackend,
    PlatformTracer,
    outcome_summary,
    retry_histogram,
)


def make_trace(n=200, horizon=60.0, seed=0):
    ts = np.sort(np.random.default_rng(seed).uniform(0, horizon, n))
    return RequestTrace(ts, np.array(["w"] * n), np.array([""] * n),
                        np.full(n, 10.0), np.array(["f"] * n))


class _FlakyBackend:
    """Fails the first ``fail_first`` attempts of every request."""

    def __init__(self, fail_first=1, retryable=True):
        self.fail_first = fail_first
        self.retryable = retryable
        self.attempts_seen: dict[float, int] = {}
        self.completed = 0

    def invoke(self, timestamp_s, workload_id):
        seen = self.attempts_seen.get(timestamp_s, 0)
        self.attempts_seen[timestamp_s] = seen + 1
        if seen < self.fail_first:
            exc = RuntimeError("flaky")
            exc.retryable = self.retryable
            raise exc
        self.completed += 1

    def drain(self):
        return []


class _DeadBackend:
    def invoke(self, timestamp_s, workload_id):
        raise RuntimeError("always down")

    def drain(self):
        return []


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(deadline_s=0.0)

    def test_exponential_growth_and_cap(self):
        p = RetryPolicy(base_delay_s=1.0, multiplier=2.0, max_delay_s=5.0,
                        jitter=0.0)
        assert p.backoff_s(1) == 1.0
        assert p.backoff_s(2) == 2.0
        assert p.backoff_s(3) == 4.0
        assert p.backoff_s(4) == 5.0  # capped

    def test_jitter_is_deterministic_per_request_and_attempt(self):
        p = RetryPolicy(jitter=0.5, seed=1)
        a = p.backoff_s(1, request_index=10)
        assert a == p.backoff_s(1, request_index=10)
        assert a != p.backoff_s(1, request_index=11)
        assert a != p.backoff_s(2, request_index=10)

    def test_retries_recover_flaky_requests(self):
        backend = _FlakyBackend(fail_first=1)
        trace = make_trace(n=50)
        result = replay(trace, backend,
                        retry=RetryPolicy(max_attempts=3, jitter=0.0))
        counts = result.outcome_counts()
        assert counts["retried"] == 50
        assert backend.completed == 50
        assert np.all(result.attempts == 2)

    def test_attempts_exhausted_yields_error(self):
        trace = make_trace(n=10)
        result = replay(trace, _DeadBackend(),
                        retry=RetryPolicy(max_attempts=3, jitter=0.0))
        assert result.outcome_counts()["error"] == 10
        assert np.all(result.attempts == 3)

    def test_non_retryable_yields_dropped_immediately(self):
        backend = _FlakyBackend(fail_first=99, retryable=False)
        trace = make_trace(n=10)
        result = replay(trace, backend,
                        retry=RetryPolicy(max_attempts=5))
        assert result.outcome_counts()["dropped"] == 10
        assert np.all(result.attempts == 1)

    def test_deadline_yields_timeout(self):
        # backoff 1s + 2s + ... with a 2.5s budget: second retry busts it
        trace = make_trace(n=5)
        result = replay(
            trace, _DeadBackend(),
            retry=RetryPolicy(max_attempts=10, base_delay_s=1.0,
                              jitter=0.0, deadline_s=2.5),
        )
        assert result.outcome_counts()["timeout"] == 5
        assert np.all(result.attempts == 2)

    def test_outcome_taxonomy_is_complete(self):
        assert OUTCOMES == ("ok", "retried", "error", "timeout", "shed",
                            "dropped")


class TestDeadlineEdgeCases:
    """Satellite: deadline boundaries, zero-retry budgets, and breaker
    reopening on the final trace second."""

    def test_backoff_exactly_filling_deadline_is_allowed(self):
        # cumulative backoff == deadline is within budget: the policy
        # only times out when the deadline is strictly exceeded
        trace = make_trace(n=4)
        result = replay(
            trace, _DeadBackend(),
            retry=RetryPolicy(max_attempts=2, base_delay_s=1.0,
                              jitter=0.0, deadline_s=1.0),
        )
        # the single 1.0 s backoff fits the 1.0 s deadline exactly, so
        # the second attempt runs and exhausts max_attempts -> error
        assert result.outcome_counts()["error"] == 4
        assert np.all(result.attempts == 2)

    def test_backoff_a_hair_over_deadline_times_out(self):
        trace = make_trace(n=4)
        result = replay(
            trace, _DeadBackend(),
            retry=RetryPolicy(max_attempts=2, base_delay_s=1.0,
                              jitter=0.0, deadline_s=0.999),
        )
        assert result.outcome_counts()["timeout"] == 4
        assert np.all(result.attempts == 1)  # never granted a retry

    def test_zero_retry_budget_fails_without_backoff(self):
        # max_attempts=1 is the zero-retry budget: a failure is final
        # and the deadline never enters the picture
        trace = make_trace(n=6)
        result = replay(
            trace, _DeadBackend(),
            retry=RetryPolicy(max_attempts=1, base_delay_s=100.0,
                              deadline_s=0.001),
        )
        assert result.outcome_counts()["error"] == 6
        assert np.all(result.attempts == 1)

    def test_backoff_attempt_below_one_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().backoff_s(0)

    def test_breaker_reopens_on_final_trace_second(self):
        from repro.platform import breaker_uptime

        horizon = 60.0
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=30.0)
        br.record_failure(0.0)                # open at t=0
        assert br.allow(horizon)              # half-open on final second
        br.record_failure(horizon)            # probe fails: reopen
        assert br.state == "open"
        assert br.transitions[-1] == (horizon, "open")
        # uptime accounting stays consistent with transitions landing
        # exactly on the horizon boundary: the half-open probe window
        # has zero width, so the whole span reads as open
        uptime = breaker_uptime(br, horizon)
        assert uptime["open"] == pytest.approx(1.0)
        assert uptime["half-open"] == pytest.approx(0.0)
        assert uptime["closed"] == pytest.approx(0.0)
        assert uptime["n_transitions"] == 3


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout_s"):
            CircuitBreaker(reset_timeout_s=0.0)

    def test_trips_after_consecutive_failures_then_recovers(self):
        br = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0)
        for t in (0.0, 1.0, 2.0):
            assert br.allow(t)
            br.record_failure(t)
        assert br.state == "open"
        assert not br.allow(5.0)          # still open
        assert br.allow(12.5)             # timeout elapsed -> half-open
        assert br.state == "half-open"
        br.record_success(12.5)
        assert br.state == "closed"

    def test_half_open_failure_reopens(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0)
        br.record_failure(0.0)
        assert br.allow(6.0)
        br.record_failure(6.0)
        assert br.state == "open"
        assert not br.allow(10.0)

    def test_breaker_sheds_load_during_dead_period(self):
        trace = make_trace(n=200, horizon=60.0)
        br = CircuitBreaker(failure_threshold=5, reset_timeout_s=5.0)
        result = replay(trace, _DeadBackend(),
                        retry=RetryPolicy(max_attempts=1), breaker=br)
        counts = result.outcome_counts()
        assert counts["shed"] > 100           # most load shed, not hammered
        assert counts["shed"] + counts["error"] == 200
        assert br.transitions  # went open at least once

    def test_transitions_traced(self):
        tracer = PlatformTracer()
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                            tracer=tracer)
        br.record_failure(0.0)
        br.allow(2.0)
        br.record_success(2.0)
        kinds = [e.kind for e in tracer.events]
        assert kinds == ["breaker_open", "breaker_half_open",
                         "breaker_closed"]


class TestOutcomeMetrics:
    def test_outcome_summary_and_retry_histogram(self):
        backend = _FlakyBackend(fail_first=1)
        trace = make_trace(n=40)
        result = replay(trace, backend,
                        retry=RetryPolicy(max_attempts=3, jitter=0.0))
        s = outcome_summary(result)
        assert s["n_requests"] == 40
        assert s["delivered_fraction"] == 1.0
        assert s["mean_attempts"] == pytest.approx(2.0)
        assert retry_histogram(result.attempts) == {2: 40}

    def test_fast_path_has_no_outcomes(self):
        class _Null:
            def invoke(self, t, w):
                pass

            def drain(self):
                return []

        result = replay(make_trace(n=5), _Null())
        assert result.outcomes is None
        with pytest.raises(ValueError, match="no outcomes"):
            result.outcome_counts()


class TestCheckpoints:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "c.npz"
        outcomes = np.array([0, 1, 2], dtype=np.uint8)
        attempts = np.array([1, 2, 3], dtype=np.int32)
        save_checkpoint(path, offset=3, outcomes=outcomes,
                        attempts=attempts,
                        trace_fingerprint=(10, 0.0, 9.0))
        off, o, a = load_checkpoint(path, (10, 0.0, 9.0))
        assert off == 3
        np.testing.assert_array_equal(o, outcomes)
        np.testing.assert_array_equal(a, attempts)

    def test_load_rejects_wrong_trace(self, tmp_path):
        path = tmp_path / "c.npz"
        save_checkpoint(path, offset=1,
                        outcomes=np.zeros(1, np.uint8),
                        attempts=np.ones(1, np.int32),
                        trace_fingerprint=(10, 0.0, 9.0))
        with pytest.raises(ValueError, match="different trace"):
            load_checkpoint(path, (11, 0.0, 9.0))

    def test_killed_replay_resumes_to_identical_result(self, tmp_path):
        """Acceptance: kill at a checkpoint boundary, resume, and get the
        same final records and outcomes as an uninterrupted run."""
        trace = make_trace(n=400, horizon=120.0)
        policy = RetryPolicy(max_attempts=3, seed=5)

        from repro.platform import FaaSCluster, WorkloadProfile

        def make_backend():
            cluster = FaaSCluster(
                {"w": WorkloadProfile("w", 10.0, 128.0)}, n_nodes=2)
            return FaultyBackend(
                cluster, FaultProfile(error_rate=0.05, seed=5))

        reference = replay(trace, make_backend(), retry=policy)

        class _KillAtRequest:
            """Client dies when request number ``n`` is submitted."""

            def __init__(self, inner, n):
                self.inner = inner
                self.seen = set()
                self.n = n

            def invoke(self, timestamp_s, workload_id):
                self.seen.add(timestamp_s)
                if len(self.seen) > self.n:
                    raise KeyboardInterrupt
                self.inner.invoke(timestamp_s, workload_id)

            def drain(self):
                return self.inner.drain()

        path = tmp_path / "replay.ckpt.npz"
        backend = make_backend()
        with pytest.raises(KeyboardInterrupt):
            replay(trace, _KillAtRequest(backend, 200), retry=policy,
                   checkpoint_path=path, checkpoint_every=100)
        # the backend (the "cluster") survived the client's death;
        # resume from the checkpoint with the same backend state
        resumed = replay(trace, backend, retry=policy,
                         checkpoint_path=path, checkpoint_every=100,
                         resume=True)
        assert resumed.outcomes.tobytes() == reference.outcomes.tobytes()
        assert resumed.attempts.tobytes() == reference.attempts.tobytes()
        assert resumed.records == reference.records

    def test_shard_fingerprint_round_trip(self, tmp_path):
        path = tmp_path / "shard.npz"
        save_checkpoint(path, offset=2,
                        outcomes=np.zeros(2, np.uint8),
                        attempts=np.ones(2, np.int32),
                        trace_fingerprint=(25, 0.0, 9.0),
                        shard=(3, 75, 100))
        off, o, a = load_checkpoint(path, (25, 0.0, 9.0),
                                    shard=(3, 75, 100))
        assert off == 2

    def test_shard_checkpoint_rejects_other_shard(self, tmp_path):
        path = tmp_path / "shard.npz"
        save_checkpoint(path, offset=1,
                        outcomes=np.zeros(1, np.uint8),
                        attempts=np.ones(1, np.int32),
                        trace_fingerprint=(25, 0.0, 9.0),
                        shard=(3, 75, 100))
        with pytest.raises(ValueError, match="belongs to shard"):
            load_checkpoint(path, (25, 0.0, 9.0), shard=(2, 50, 75))
        # and a shard checkpoint cannot be resumed as a whole trace
        with pytest.raises(ValueError, match="belongs to shard"):
            load_checkpoint(path, (25, 0.0, 9.0))

    def test_whole_trace_checkpoint_rejected_for_shard(self, tmp_path):
        path = tmp_path / "whole.npz"
        save_checkpoint(path, offset=1,
                        outcomes=np.zeros(1, np.uint8),
                        attempts=np.ones(1, np.int32),
                        trace_fingerprint=(25, 0.0, 9.0))
        with pytest.raises(ValueError, match="whole-trace"):
            load_checkpoint(path, (25, 0.0, 9.0), shard=(0, 0, 25))

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        trace = make_trace(n=20)
        backend = _FlakyBackend(fail_first=0)
        result = replay(trace, backend,
                        retry=RetryPolicy(max_attempts=2),
                        checkpoint_path=tmp_path / "none.npz",
                        resume=True)
        assert result.outcome_counts()["ok"] == 20

    def test_checkpoint_every_validated(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            replay(make_trace(n=5), _DeadBackend(),
                   checkpoint_path="x.npz", checkpoint_every=0)
