"""Differential equivalence: streaming ingestion vs the in-memory path.

The contract pinned here (ISSUE 5 acceptance):

- **Exact statistics are byte-identical** between the materialised and
  the streaming pipeline for every tested ``(chunk_rows, jobs)``
  combination: the aggregated super-Function rate matrix, per-group
  invocation (popularity) counts, group keys, and the final spec's
  scaled per-minute request matrix.
- **Sketched CDFs are within the sketch's own rank-error bound** of the
  exact :class:`~repro.stats.ecdf.EmpiricalCDF`, and within the
  configured default KS budget of 0.01.
- For a fixed ``chunk_rows``, ``jobs=N`` produces a **byte-identical
  summary** (same cache fingerprint) and a byte-identical spec.
"""

import numpy as np
import numpy.testing as npt
import pytest

from repro.cache import fingerprint
from repro.core import ShrinkRay, aggregate_functions
from repro.stats.distance import ks_distance
from repro.traces import (
    dump_azure_day,
    load_azure_day,
    stream_azure_day,
    summarize_trace,
    synthetic_azure_trace,
    synthetic_huawei_trace,
)
from repro.traces.ops import invocation_duration_cdf
from repro.workloads import build_default_pool

#: Acceptance default: sketched duration CDF within this KS distance of
#: the exact one (the sketch's own tracked bound is usually far tighter).
KS_BUDGET = 0.01

CHUNK_SIZES = [7, 64, 1000]
JOBS = [None, 2]

MAX_RPS = 8.0
DURATION_MIN = 20
SEED = 11


def _make_trace(source):
    if source == "azure":
        return synthetic_azure_trace(n_functions=500, seed=23)
    return synthetic_huawei_trace(seed=23)


@pytest.fixture(scope="module", params=["azure", "huawei"])
def source(request, tmp_path_factory):
    """(name, materialised trace, CSV directory, in-memory baseline)."""
    trace = _make_trace(request.param)
    directory = tmp_path_factory.mktemp(f"{request.param}-csv")
    dump_azure_day(trace, directory)
    loaded = load_azure_day(directory)
    pool = build_default_pool()
    spec = ShrinkRay().run(loaded, pool, max_rps=MAX_RPS,
                           duration_minutes=DURATION_MIN, seed=SEED)
    aggregated, _ = aggregate_functions(loaded.nonzero_functions())
    return {
        "name": request.param,
        "trace": loaded,
        "dir": directory,
        "pool": pool,
        "spec": spec,
        "aggregated": aggregated,
    }


@pytest.mark.parametrize("jobs", JOBS)
@pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
def test_streaming_matches_inmemory(source, chunk_rows, jobs):
    summary = stream_azure_day(source["dir"], chunk_rows=chunk_rows,
                               jobs=jobs)
    agg = source["aggregated"]
    streamed = summary.to_aggregated_trace()

    # Exact statistics: byte-identical to the in-memory aggregation.
    npt.assert_array_equal(streamed.function_ids, agg.function_ids)
    assert streamed.per_minute.tobytes() == agg.per_minute.astype(
        np.int64).tobytes(), "aggregated rate matrix diverged"
    assert (streamed.invocations_per_function.tobytes()
            == agg.invocations_per_function.tobytes()), (
        "per-group popularity counts diverged")
    # Group durations agree up to float accumulation order.
    npt.assert_allclose(streamed.durations_ms, agg.durations_ms,
                        rtol=1e-12)

    # Full pipeline: the spec's scaled request matrix is byte-identical.
    spec = ShrinkRay(jobs=jobs).run(
        summary, source["pool"], max_rps=MAX_RPS,
        duration_minutes=DURATION_MIN, seed=SEED,
    )
    base = source["spec"]
    assert spec.per_minute.tobytes() == base.per_minute.tobytes()
    assert spec.total_requests == base.total_requests
    assert [e.function_id for e in spec.entries] == [
        e.function_id for e in base.entries
    ]
    assert spec.metadata["source_functions"] == \
        base.metadata["source_functions"]
    assert spec.metadata["source_invocations"] == \
        base.metadata["source_invocations"]

    # Sketched duration CDF: within the tracked rank-error bound of the
    # exact invocation-weighted CDF, and within the 0.01 acceptance
    # budget.
    exact = invocation_duration_cdf(source["trace"])
    ks = ks_distance(exact, summary.invocation_duration_cdf())
    assert ks <= summary.duration_rank_error + 1e-9
    assert ks <= KS_BUDGET


@pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
def test_jobs_fanout_is_byte_identical(source, chunk_rows):
    """For fixed chunking, worker count never changes a single byte."""
    sequential = stream_azure_day(source["dir"], chunk_rows=chunk_rows)
    fanned = stream_azure_day(source["dir"], chunk_rows=chunk_rows, jobs=3)
    assert fingerprint(sequential.fingerprint_parts()) == \
        fingerprint(fanned.fingerprint_parts())

    spec_seq = ShrinkRay().run(sequential, source["pool"], max_rps=MAX_RPS,
                               duration_minutes=DURATION_MIN, seed=SEED)
    spec_fan = ShrinkRay(jobs=3).run(fanned, source["pool"],
                                     max_rps=MAX_RPS,
                                     duration_minutes=DURATION_MIN,
                                     seed=SEED)
    assert spec_seq.to_dict() == spec_fan.to_dict()


def test_exact_stats_invariant_across_chunk_sizes(source):
    """Rate matrix + popularity counts never depend on chunking."""
    matrices = []
    counts = []
    for chunk_rows in CHUNK_SIZES:
        s = stream_azure_day(source["dir"], chunk_rows=chunk_rows)
        _keys, matrix, cnt, _durations, _sizes = s.aggregated_groups()
        matrices.append(matrix.tobytes())
        counts.append(cnt.tobytes())
    assert len(set(matrices)) == 1
    assert len(set(counts)) == 1


def test_summarize_trace_matches_csv_streaming(source):
    """The in-memory chunker and the CSV reader produce the same exact
    statistics (the CSV round-trip only perturbs durations in their
    printed precision, which exact integer stats ignore)."""
    from_csv = stream_azure_day(source["dir"], chunk_rows=64)
    from_mem = summarize_trace(source["trace"], chunk_rows=64)
    a = from_csv.aggregated_groups()
    b = from_mem.aggregated_groups()
    npt.assert_array_equal(a[0], b[0])  # keys
    npt.assert_array_equal(a[1], b[1])  # rate matrix
    npt.assert_array_equal(a[2], b[2])  # popularity counts


def test_compacting_sketch_stays_within_bound(source):
    """Tiny sketch capacity forces compaction; the tracked bound holds."""
    summary = stream_azure_day(source["dir"], chunk_rows=64, sketch_k=32)
    assert summary.duration_sketch.size <= 32 * 64  # genuinely bounded
    assert summary.duration_rank_error > 0.0
    exact = invocation_duration_cdf(source["trace"])
    ks = ks_distance(exact, summary.invocation_duration_cdf())
    assert ks <= summary.duration_rank_error + 1e-9
