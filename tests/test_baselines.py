"""Tests for the prior-work baseline strategies."""

import numpy as np
import pytest

from repro.baselines import (
    BusyLoop,
    busyloop_pool_from_trace,
    plain_poisson_trace,
    random_sampling_spec,
)
from repro.stats import EmpiricalCDF, ks_distance
from repro.traces import synthetic_azure_trace


@pytest.fixture(scope="module")
def azure():
    return synthetic_azure_trace(n_functions=1500, seed=21)


class TestPlainPoisson:
    def test_rate_and_duration(self):
        t = plain_poisson_trace(10.0, 10, seed=0)
        assert t.duration_s < 600
        assert t.n_requests == pytest.approx(6000, rel=0.1)

    def test_flat_load_over_time(self):
        t = plain_poisson_trace(20.0, 30, seed=1)
        per_min = t.per_minute_rate(30 * 60).astype(float)
        # constant-rate process: minute counts vary only by Poisson noise
        assert per_min.std() / per_min.mean() < 0.1

    def test_uniform_popularity(self):
        t = plain_poisson_trace(20.0, 30, seed=2)
        _, counts = np.unique(t.workload_ids, return_counts=True)
        shares = counts / counts.sum()
        assert counts.size == 10
        assert shares.max() < 0.15  # no skew: the violation under study

    def test_only_ten_distinct_runtimes(self):
        t = plain_poisson_trace(5.0, 10, seed=3)
        assert np.unique(t.runtimes_ms).size <= 10

    def test_exponential_gaps(self):
        t = plain_poisson_trace(50.0, 10, seed=4)
        gaps = np.diff(t.timestamps_s)
        # exponential: CV of gaps ~ 1
        assert 0.9 <= gaps.std() / gaps.mean() <= 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            plain_poisson_trace(0.0, 10)
        with pytest.raises(ValueError):
            plain_poisson_trace(1.0, 0)


class TestRandomSampling:
    def test_spec_totals(self, azure):
        spec = random_sampling_spec(azure, 80, 10_000, 60, seed=0)
        assert spec.total_requests == 10_000
        assert spec.n_functions == 80
        assert spec.duration_minutes == 60

    def test_maps_to_vanilla_only(self, azure):
        spec = random_sampling_spec(azure, 50, 5_000, 30, seed=1)
        assert all(e.workload_id.endswith(":vanilla") for e in spec.entries)

    def test_runtime_distribution_violated(self, azure):
        """The Figure-1b critique: 10 mapping targets distort the CDF."""
        spec = random_sampling_spec(azure, 100, 50_000, 120, seed=2)
        counts = azure.invocations_per_function.astype(float)
        mask = counts > 0
        azure_cdf = EmpiricalCDF.from_samples(azure.durations_ms[mask],
                                              counts[mask])
        req = spec.requests_per_function.astype(float)
        live = req > 0
        got = EmpiricalCDF.from_samples(spec.runtimes_ms[live], req[live])
        assert ks_distance(got, azure_cdf) > 0.2

    def test_metadata(self, azure):
        spec = random_sampling_spec(azure, 10, 1_000, 30, seed=3)
        assert spec.metadata["baseline"] == "random-sampling"
        assert 0 <= spec.metadata["window_start_minute"] <= 1440 - 30

    def test_idle_window_degenerates_gracefully(self):
        # a trace that is fully idle in every window
        from repro.traces import Trace

        t = Trace("idle", np.array(["f0", "f1"]), np.array(["a", "a"]),
                  np.array([10.0, 20.0]),
                  np.zeros((2, 100), dtype=np.int64))
        t.per_minute[0, 0] = 1  # one invocation so select() keeps them
        spec = random_sampling_spec(t, 2, 100, 10, seed=0)
        assert spec.total_requests == 100

    def test_validation(self, azure):
        with pytest.raises(ValueError):
            random_sampling_spec(azure, 10, 0, 30)
        with pytest.raises(ValueError):
            random_sampling_spec(azure, 10, 100, 0)
        with pytest.raises(ValueError):
            random_sampling_spec(azure, 10, 100, 10_000)


class TestBusyLoop:
    def test_spins_for_target(self):
        family = BusyLoop()
        import time

        t0 = time.perf_counter()
        spins = family.run(np.random.default_rng(0), target_ms=20.0)
        elapsed = (time.perf_counter() - t0) * 1e3
        assert spins > 0
        assert elapsed >= 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BusyLoop().prepare(np.random.default_rng(0), target_ms=0.0)

    def test_pool_clones_trace_cdf(self, azure):
        pool = busyloop_pool_from_trace(azure, 500, seed=0)
        assert len(pool) == 500
        ks = ks_distance(
            EmpiricalCDF.from_samples(pool.runtimes_ms),
            EmpiricalCDF.from_samples(azure.durations_ms),
        )
        # perfect-runtime-fidelity strategy: much closer than vanilla FB
        assert ks < 0.1

    def test_pool_single_family(self, azure):
        pool = busyloop_pool_from_trace(azure, 20, seed=1)
        assert pool.families() == ["busyloop"]

    def test_pool_validation(self, azure):
        with pytest.raises(ValueError):
            busyloop_pool_from_trace(azure, 0)
