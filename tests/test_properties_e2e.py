"""Cross-cutting property tests over the whole pipeline.

Each property here is an invariant a downstream user implicitly relies
on; hypothesis drives the trace shapes, scaling targets, and seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExperimentSpec,
    SpecEntry,
    aggregate_functions,
    scale_request_rate,
    thumbnail_scale,
)
from repro.loadgen import generate_request_trace
from repro.traces import Trace


@st.composite
def random_trace(draw):
    n = draw(st.integers(2, 25))
    minutes = draw(st.integers(4, 60))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    durations = rng.lognormal(4.0, 2.0, n) + 1.0
    # heavy-tailed counts so the trace resembles real popularity skew
    counts = np.maximum(rng.pareto(1.0, n) * 50, 1).astype(np.int64)
    per_minute = np.zeros((n, minutes), dtype=np.int64)
    for i in range(n):
        per_minute[i] = rng.multinomial(
            counts[i], np.full(minutes, 1.0 / minutes)
        )
    return Trace(
        name=f"prop-{seed}",
        function_ids=np.array([f"f{i}" for i in range(n)]),
        app_ids=np.array(["a"] * n),
        durations_ms=durations,
        per_minute=per_minute,
    )


class TestAggregationProperties:
    @given(random_trace(), st.floats(0.1, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_invocations_conserved(self, trace, quantize):
        agg, audit = aggregate_functions(trace, quantize_ms=quantize)
        assert agg.total_invocations == trace.total_invocations
        assert audit.aggregated_shares.sum() == pytest.approx(1.0)

    @given(random_trace())
    @settings(max_examples=40, deadline=None)
    def test_weighted_mean_duration_preserved(self, trace):
        counts = trace.invocations_per_function.astype(float)
        before = np.average(trace.durations_ms, weights=counts)
        agg, _ = aggregate_functions(trace)
        after = np.average(
            agg.durations_ms,
            weights=agg.invocations_per_function.astype(float),
        )
        assert after == pytest.approx(before, rel=1e-9)

    @given(random_trace())
    @settings(max_examples=40, deadline=None)
    def test_aggregation_idempotent(self, trace):
        once, _ = aggregate_functions(trace)
        twice, _ = aggregate_functions(once)
        assert twice.n_functions == once.n_functions


class TestScalingProperties:
    @given(random_trace(), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_thumbnail_then_rate_preserves_shares(self, trace, duration):
        if duration > trace.n_minutes:
            duration = trace.n_minutes
        matrix = thumbnail_scale(trace.per_minute, duration)
        busiest = matrix.sum(axis=0).max()
        if busiest <= 60:
            return  # nothing to downscale
        rng = np.random.default_rng(0)
        scaled = scale_request_rate(matrix, 1.0, rng)
        # per-function shares survive in expectation (loose tolerance:
        # single realisation of a multinomial)
        orig = matrix.sum(axis=1).astype(float)
        got = scaled.sum(axis=1).astype(float)
        if scaled.sum() >= 500:
            top = int(np.argmax(orig))
            assert got[top] / got.sum() == pytest.approx(
                orig[top] / orig.sum(), abs=0.1
            )

    @given(random_trace())
    @settings(max_examples=30, deadline=None)
    def test_rate_scaled_never_exceeds_original(self, trace):
        busiest = int(trace.aggregate_per_minute.max())
        if busiest <= 60:
            return
        rng = np.random.default_rng(1)
        scaled = scale_request_rate(trace.per_minute, 1.0, rng)
        # downsampling never invents load in a minute that had none
        assert np.all(scaled[trace.per_minute == 0] == 0)


class TestSpecProperties:
    @given(st.integers(1, 8), st.integers(1, 10), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_spec_json_roundtrip(self, n, minutes, seed):
        rng = np.random.default_rng(seed)
        entries = [
            SpecEntry(f"f{i}", f"w:{i}", "pyaes",
                      float(rng.uniform(1, 1000)),
                      float(rng.uniform(16, 512)))
            for i in range(n)
        ]
        spec = ExperimentSpec(
            "p", "t", float(rng.uniform(0.1, 100)), entries,
            rng.integers(0, 50, (n, minutes)).astype(np.int64),
            metadata={"k": seed},
        )
        again = ExperimentSpec.from_dict(spec.to_dict())
        np.testing.assert_array_equal(again.per_minute, spec.per_minute)
        assert again.max_rps == spec.max_rps
        assert [e.runtime_ms for e in again.entries] == [
            e.runtime_ms for e in spec.entries
        ]

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_generate_deterministic_count_modes(self, seed):
        rng = np.random.default_rng(seed)
        n, minutes = 4, 6
        matrix = rng.integers(0, 30, (n, minutes)).astype(np.int64)
        if matrix.sum() == 0:
            matrix[0, 0] = 1
        entries = [SpecEntry(f"f{i}", f"w:{i}", "pyaes", 5.0, 32.0)
                   for i in range(n)]
        spec = ExperimentSpec("p", "t", 1.0, entries, matrix)
        for mode in ("uniform", "equidistant"):
            trace = generate_request_trace(spec, seed=seed,
                                           arrival_mode=mode)
            assert trace.n_requests == spec.total_requests
            assert np.all(np.diff(trace.timestamps_s) >= 0)
