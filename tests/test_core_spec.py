"""Tests for ExperimentSpec model and serialisation."""

import numpy as np
import pytest

from repro.core import ExperimentSpec, SpecEntry


def make_spec(n=3, minutes=4, counts=None):
    entries = [
        SpecEntry(f"fn{i}", f"w:{i}", ["pyaes", "matmul", "chameleon"][i % 3],
                  runtime_ms=10.0 * (i + 1), memory_mb=64.0)
        for i in range(n)
    ]
    if counts is None:
        counts = np.arange(n * minutes).reshape(n, minutes)
    return ExperimentSpec(
        name="test-spec",
        source_trace="azure-synth",
        max_rps=5.0,
        entries=entries,
        per_minute=np.asarray(counts, dtype=np.int64),
        metadata={"seed": 1},
    )


class TestSpecModel:
    def test_derived_properties(self):
        spec = make_spec()
        assert spec.n_functions == 3
        assert spec.duration_minutes == 4
        assert spec.total_requests == int(np.arange(12).sum())
        assert spec.busiest_minute_rate == spec.aggregate_per_minute.max()

    def test_validation_rejects_empty_entries(self):
        with pytest.raises(ValueError, match="at least one entry"):
            ExperimentSpec("s", "t", 1.0, [], np.zeros((0, 2)))

    def test_validation_rejects_shape_mismatch(self):
        spec = make_spec()
        with pytest.raises(ValueError, match="per_minute"):
            ExperimentSpec("s", "t", 1.0, spec.entries,
                           np.zeros((2, 4), dtype=np.int64))

    def test_validation_rejects_negative_counts(self):
        spec = make_spec()
        bad = spec.per_minute.copy()
        bad[0, 0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            ExperimentSpec("s", "t", 1.0, spec.entries, bad)

    def test_validation_rejects_bad_rps(self):
        spec = make_spec()
        with pytest.raises(ValueError, match="max_rps"):
            ExperimentSpec("s", "t", 0.0, spec.entries, spec.per_minute)

    def test_entry_validation(self):
        with pytest.raises(ValueError, match="runtime"):
            SpecEntry("f", "w", "fam", runtime_ms=0.0, memory_mb=1.0)
        with pytest.raises(ValueError, match="memory"):
            SpecEntry("f", "w", "fam", runtime_ms=1.0, memory_mb=0.0)

    def test_invocation_duration_cdf_weighted(self):
        spec = make_spec()
        cdf = spec.invocation_duration_cdf()
        counts = spec.requests_per_function.astype(float)
        expected = np.average(spec.runtimes_ms, weights=counts)
        assert cdf.mean() == pytest.approx(expected)

    def test_invocation_cdf_requires_requests(self):
        spec = make_spec(counts=np.zeros((3, 4), dtype=np.int64))
        with pytest.raises(ValueError, match="no requests"):
            spec.invocation_duration_cdf()

    def test_family_request_shares(self):
        spec = make_spec()
        shares = spec.family_request_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert set(shares) == {"pyaes", "matmul", "chameleon"}


class TestSpecSerialisation:
    def test_json_roundtrip(self, tmp_path):
        spec = make_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = ExperimentSpec.load(path)
        assert loaded.name == spec.name
        assert loaded.max_rps == spec.max_rps
        assert loaded.metadata == spec.metadata
        np.testing.assert_array_equal(loaded.per_minute, spec.per_minute)
        assert [e.workload_id for e in loaded.entries] == [
            e.workload_id for e in spec.entries
        ]

    def test_version_guard(self):
        spec = make_spec()
        data = spec.to_dict()
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            ExperimentSpec.from_dict(data)

    def test_dict_roundtrip_preserves_dtypes(self):
        spec = make_spec()
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again.per_minute.dtype == np.int64
        assert again.entries[0].runtime_ms == spec.entries[0].runtime_ms
