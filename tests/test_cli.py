"""Tests for the command-line interface."""

import csv

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_shrinkray_requires_rps_and_duration(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shrinkray"])

    def test_defaults(self):
        args = build_parser().parse_args(
            ["shrinkray", "--max-rps", "5", "--duration", "30"]
        )
        assert args.trace == "azure"
        assert args.threshold == 10.0
        assert args.time_mode == "thumbnails"


class TestCommands:
    @pytest.fixture(scope="class")
    def spec_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "spec.json"
        rc = main([
            "shrinkray", "--trace", "azure", "--functions", "800",
            "--max-rps", "3", "--duration", "10",
            "--seed", "1", "--out", str(path),
        ])
        assert rc == 0
        return path

    def test_shrinkray_writes_spec(self, spec_path):
        from repro.core import ExperimentSpec

        spec = ExperimentSpec.load(spec_path)
        assert spec.duration_minutes == 10
        assert spec.busiest_minute_rate <= 180

    def test_generate_writes_csv(self, spec_path, tmp_path, capsys):
        out = tmp_path / "requests.csv"
        rc = main(["generate", "--spec", str(spec_path),
                   "--out", str(out), "--arrival-mode", "uniform"])
        assert rc == 0
        with out.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows
        assert set(rows[0]) == {"timestamp_s", "workload_id", "function_id",
                                "runtime_ms", "family"}
        times = [float(r["timestamp_s"]) for r in rows]
        assert times == sorted(times)

    def test_generate_npz_output(self, spec_path, tmp_path):
        from repro.loadgen import load_request_trace_npz

        out = tmp_path / "requests.npz"
        rc = main(["generate", "--spec", str(spec_path),
                   "--out", str(out), "--arrival-mode", "uniform"])
        assert rc == 0
        trace = load_request_trace_npz(out)
        assert trace.n_requests > 0

    def test_replay_prints_summary(self, spec_path, capsys):
        rc = main(["replay", "--spec", str(spec_path), "--nodes", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cold-start fraction" in out
        assert "latency p50/p90/p99" in out

    def test_replay_with_faults_retry_and_checkpoint(
            self, spec_path, tmp_path, capsys):
        import json

        profile = tmp_path / "faults.json"
        profile.write_text(json.dumps({"error_rate": 0.05, "seed": 7}))
        ckpt = tmp_path / "replay.ckpt.npz"
        rc = main([
            "replay", "--spec", str(spec_path), "--nodes", "4",
            "--fault-profile", str(profile), "--retry", "3",
            "--breaker", "--checkpoint", str(ckpt),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "request outcomes" in out
        assert "injected faults" in out
        assert ckpt.exists()
        # resuming the finished replay restores outcomes, submits nothing
        rc = main([
            "replay", "--spec", str(spec_path), "--nodes", "4",
            "--retry", "3", "--checkpoint", str(ckpt), "--resume",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "already complete at resume" in out

    def test_replay_error_rate_shortcut(self, spec_path, capsys):
        rc = main(["replay", "--spec", str(spec_path), "--nodes", "4",
                   "--error-rate", "0.1", "--retry", "2"])
        assert rc == 0
        assert "request outcomes" in capsys.readouterr().out

    def test_replay_bad_fault_profile_rejected(self, spec_path, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"error_rate": 2.0}')
        with pytest.raises(SystemExit, match="fault profile"):
            main(["replay", "--spec", str(spec_path),
                  "--fault-profile", str(bad)])
        with pytest.raises(SystemExit, match="error-rate"):
            main(["replay", "--spec", str(spec_path),
                  "--error-rate", "3.0"])

    def test_figures_subset(self, capsys):
        rc = main(["figures", "fig3", "--functions", "500", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "frac_duration_cv_below_1" in out

    def test_figures_unknown_rejected(self):
        with pytest.raises(SystemExit, match="unknown figure"):
            main(["figures", "fig99"])

    def test_unknown_trace_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown trace source"):
            main(["shrinkray", "--trace", "nope", "--max-rps", "1",
                  "--duration", "10"])

    def test_trace_from_csv_directory(self, tmp_path):
        from repro.traces import dump_azure_day, synthetic_azure_trace

        trace = synthetic_azure_trace(n_functions=300, seed=4)
        dump_azure_day(trace, tmp_path / "day")
        out = tmp_path / "spec.json"
        rc = main(["shrinkray", "--trace", str(tmp_path / "day"),
                   "--max-rps", "2", "--duration", "10",
                   "--out", str(out)])
        assert rc == 0
        assert out.exists()

    def test_calibrate_one_family(self, capsys):
        rc = main(["calibrate", "--family", "pyaes", "--repeats", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pyaes" in out and "ms_per_unit" in out


class TestTracePathErrors:
    """Path-like trace sources get path-specific diagnostics, not the
    generic 'unknown trace source' message."""

    def test_missing_path_reported_as_missing(self, tmp_path):
        missing = tmp_path / "no" / "such" / "day"
        with pytest.raises(SystemExit, match="does not exist"):
            main(["shrinkray", "--trace", str(missing),
                  "--max-rps", "1", "--duration", "10"])

    def test_file_instead_of_directory(self, tmp_path):
        a_file = tmp_path / "trace.csv"
        a_file.write_text("not,a,directory\n")
        with pytest.raises(SystemExit, match="not a directory"):
            main(["shrinkray", "--trace", str(a_file),
                  "--max-rps", "1", "--duration", "10"])

    def test_bare_name_still_unknown_source(self):
        with pytest.raises(SystemExit, match="unknown trace source"):
            main(["shrinkray", "--trace", "nope",
                  "--max-rps", "1", "--duration", "10"])


class TestParallelCacheFlags:
    def test_flags_parse_with_defaults(self):
        args = build_parser().parse_args(
            ["shrinkray", "--max-rps", "5", "--duration", "30"]
        )
        assert args.jobs is None
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_shrinkray_jobs_and_cache_byte_identical(self, tmp_path):
        """Two cached runs (the second warm) and an uncached run all
        produce byte-identical spec files."""
        cache_dir = tmp_path / "cache"
        outs = []
        for name in ("cold.json", "warm.json", "nocache.json"):
            out = tmp_path / name
            argv = ["shrinkray", "--trace", "azure", "--functions", "600",
                    "--max-rps", "2", "--duration", "8", "--seed", "3",
                    "--jobs", "2", "--out", str(out)]
            argv += (["--no-cache"] if name == "nocache.json"
                     else ["--cache-dir", str(cache_dir)])
            assert main(argv) == 0
            outs.append(out.read_bytes())
        assert outs[0] == outs[1] == outs[2]
        assert list(cache_dir.glob("**/*.pkl"))  # cache actually populated

    def test_generate_cache_and_jobs_byte_identical(self, tmp_path):
        spec = tmp_path / "spec.json"
        assert main(["shrinkray", "--trace", "azure", "--functions", "600",
                     "--max-rps", "2", "--duration", "8", "--seed", "3",
                     "--out", str(spec)]) == 0
        cache_dir = tmp_path / "gcache"
        outs = []
        for i, extra in enumerate((
            ["--jobs", "1", "--cache-dir", str(cache_dir)],
            ["--jobs", "3", "--cache-dir", str(cache_dir)],
            ["--no-cache"],
        )):
            out = tmp_path / f"req{i}.csv"
            assert main(["generate", "--spec", str(spec), "--seed", "5",
                         "--out", str(out)] + extra) == 0
            outs.append(out.read_bytes())
        assert outs[0] == outs[1] == outs[2]

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        from repro.cache import CACHE_DIR_ENV

        cache_dir = tmp_path / "envcache"
        monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))
        out = tmp_path / "spec.json"
        assert main(["shrinkray", "--trace", "azure", "--functions", "600",
                     "--max-rps", "2", "--duration", "8",
                     "--out", str(out)]) == 0
        assert list(cache_dir.glob("**/*.pkl"))
