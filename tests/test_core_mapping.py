"""Tests for the Function-to-Workload mapping (paper section 3.1.3)."""

import numpy as np
import pytest

from repro.core import map_functions
from repro.traces import Trace
from repro.workloads import Workload, WorkloadPool


def make_trace(durations, counts=None):
    n = len(durations)
    if counts is None:
        counts = [1] * n
    return Trace(
        name="t",
        function_ids=np.array([f"f{i}" for i in range(n)]),
        app_ids=np.array(["a"] * n),
        durations_ms=np.array(durations, dtype=float),
        per_minute=np.array(counts, dtype=np.int64)[:, None],
    )


def make_pool(spec):
    """spec: list of (family, runtime)."""
    return WorkloadPool([
        Workload(f"{fam}:{i}", fam, {"i": i}, rt, 32.0)
        for i, (fam, rt) in enumerate(spec)
    ])


class TestThresholdAssociation:
    def test_exact_match_chosen(self):
        pool = make_pool([("a", 90.0), ("a", 100.0), ("a", 130.0)])
        m = map_functions(make_trace([100.0]), pool, error_threshold_pct=10)
        assert m.mapped_runtime_ms[0] == 100.0
        assert not m.fallback_mask[0]
        assert m.n_fallbacks == 0

    def test_threshold_respected(self):
        pool = make_pool([("a", 89.0), ("a", 111.0)])
        m = map_functions(make_trace([100.0]), pool, error_threshold_pct=12)
        assert m.relative_error[0] <= 0.12

    def test_fallback_to_closest_when_no_candidate(self):
        pool = make_pool([("a", 10.0), ("a", 1000.0)])
        m = map_functions(make_trace([100.0]), pool, error_threshold_pct=5)
        assert m.fallback_mask[0]
        assert m.mapped_runtime_ms[0] == 10.0  # closer than 1000

    def test_long_outlier_fallback(self):
        # the paper's relaxation: long-running outliers map to the longest
        pool = make_pool([("a", 10.0), ("b", 5_000.0)])
        m = map_functions(make_trace([500_000.0]), pool)
        assert m.fallback_mask[0]
        assert m.mapped_runtime_ms[0] == 5_000.0

    def test_rejects_negative_threshold(self):
        pool = make_pool([("a", 1.0)])
        with pytest.raises(ValueError):
            map_functions(make_trace([1.0]), pool, error_threshold_pct=-1)


class TestBalanceSelection:
    def test_balances_families_across_functions(self):
        # two families, both always candidates: 4 functions split 2/2
        pool = make_pool([("a", 100.0), ("b", 101.0)])
        trace = make_trace([100.0, 100.5, 100.2, 100.7])
        m = map_functions(trace, pool, error_threshold_pct=10)
        counts = m.family_assignment_counts(pool)
        assert counts == {"a": 2, "b": 2}

    def test_most_popular_function_gets_closest(self):
        pool = make_pool([("a", 100.0), ("b", 108.0)])
        trace = make_trace([100.0, 100.0], counts=[1000, 1])
        m = map_functions(trace, pool, error_threshold_pct=10)
        # fn0 is most popular -> processed first -> exact match family a
        assert m.mapped_runtime_ms[0] == 100.0

    def test_balance_off_always_closest(self):
        pool = make_pool([("a", 100.0), ("b", 108.0)])
        trace = make_trace([100.0, 100.0, 100.0])
        m = map_functions(trace, pool, error_threshold_pct=10, balance=False)
        assert np.all(m.mapped_runtime_ms == 100.0)

    def test_single_candidate_short_circuits(self):
        pool = make_pool([("a", 100.0), ("b", 500.0)])
        trace = make_trace([100.0, 100.0])
        m = map_functions(trace, pool, error_threshold_pct=5)
        counts = m.family_assignment_counts(pool)
        assert counts == {"a": 2}

    def test_mapping_dimensions(self):
        pool = make_pool([("a", 10.0), ("b", 20.0), ("c", 30.0)])
        trace = make_trace([12.0, 22.0, 28.0, 9.0])
        m = map_functions(trace, pool)
        assert m.n_functions == 4
        assert len(m.workload_ids) == 4
        assert m.workload_indices.shape == (4,)
        assert m.relative_error.shape == (4,)


class TestErrorAccounting:
    def test_relative_error_definition(self):
        pool = make_pool([("a", 110.0)])
        m = map_functions(make_trace([100.0]), pool, error_threshold_pct=15)
        assert m.relative_error[0] == pytest.approx(0.1)

    def test_non_fallback_errors_bounded_by_threshold(self):
        rng = np.random.default_rng(0)
        pool = make_pool([("a", float(r)) for r in rng.uniform(1, 1000, 200)])
        trace = make_trace(rng.uniform(1, 1000, 50).tolist())
        m = map_functions(trace, pool, error_threshold_pct=20)
        ok = ~m.fallback_mask
        assert np.all(m.relative_error[ok] <= 0.20 + 1e-9)
