"""Differential equivalence: array engine vs reference object engine.

The headline contract of ISSUE 7: for every configuration, the
array-native :class:`~repro.platform.simulator_vec.FaaSCluster` and the
reference :class:`~repro.platform.simulator.ObjectFaaSCluster` produce
*byte-identical* invocation records, clocks, drops, memory samples, and
trace streams.  Policies are stateful, so each engine run constructs its
own fresh policy objects from a factory -- sharing one RNG-bearing
scheduler between runs would compare a run against its own side effects.
"""

import numpy as np
import pytest

from repro.platform import (
    CrashHook,
    FaaSCluster,
    FixedKeepAlive,
    HashAffinityScheduler,
    HistogramKeepAlive,
    LeastLoadedScheduler,
    LocalityAwareScheduler,
    NoKeepAlive,
    ObjectFaaSCluster,
    PlatformTracer,
    PowerOfTwoScheduler,
    RandomScheduler,
    ReactiveAutoscaler,
    WorkloadProfile,
    summarize,
    summarize_columns,
)

SEEDS = (0, 1, 2)

KEEPALIVES = {
    "none": NoKeepAlive,
    "fixed": lambda: FixedKeepAlive(1.5),
    "histogram": lambda: HistogramKeepAlive(
        default_ttl_s=1.5, min_ttl_s=0.1, window=32, min_observations=4
    ),
}

SCHEDULERS = {
    "least-loaded": LeastLoadedScheduler,
    "random": lambda: RandomScheduler(seed=7),
    "power-of-two": lambda: PowerOfTwoScheduler(seed=7),
    "locality": LocalityAwareScheduler,
    "hash": HashAffinityScheduler,
}


def make_profiles(n=6):
    return {
        f"w{i}": WorkloadProfile(
            f"w{i}",
            runtime_ms=40.0 + 17.0 * i,
            memory_mb=128.0 * (1 + i % 4),
        )
        for i in range(n)
    }


def make_load(seed, n=300, horizon_s=20.0, n_workloads=6):
    rng = np.random.default_rng(seed)
    ts = np.sort(rng.uniform(0.0, horizon_s, n))
    wids = [f"w{int(i)}" for i in rng.integers(0, n_workloads, n)]
    return ts, wids


def run_engine(cls, ts, wids, make_kwargs, *, batch=False):
    """One full run on a freshly-built cluster; returns its observables."""
    cluster = cls(make_profiles(), **make_kwargs())
    if batch:
        cluster.invoke_many(ts, wids)
    else:
        for t, w in zip(ts.tolist(), wids):
            cluster.invoke(t, w)
    records = cluster.drain()
    return {
        "records": records,
        "clock": cluster.clock_s,
        "dropped": cluster.dropped,
        "memory_samples": cluster.memory_samples,
        "n_nodes": len(cluster.nodes),
        "node_state": [
            (n.node_id, n.used_memory_mb, n.busy_count, n.idle_count)
            for n in cluster.nodes
        ],
    }


def assert_equivalent(ts, wids, make_kwargs, *, batch=False):
    ref = run_engine(ObjectFaaSCluster, ts, wids, make_kwargs)
    vec = run_engine(FaaSCluster, ts, wids, make_kwargs, batch=batch)
    assert vec["records"] == ref["records"]
    assert vec["clock"] == ref["clock"]
    assert vec["dropped"] == ref["dropped"]
    assert vec["memory_samples"] == ref["memory_samples"]
    assert vec["n_nodes"] == ref["n_nodes"]
    assert vec["node_state"] == ref["node_state"]
    return ref, vec


# ---------------------------------------------------------------------------
# the core matrix: seeds x keep-alive policies x schedulers
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("ka", sorted(KEEPALIVES))
@pytest.mark.parametrize("sched", sorted(SCHEDULERS))
def test_equivalence_matrix(seed, ka, sched):
    ts, wids = make_load(seed)
    assert_equivalent(
        ts,
        wids,
        lambda: dict(
            n_nodes=3,
            node_memory_mb=1024.0,
            keepalive=KEEPALIVES[ka](),
            scheduler=SCHEDULERS[sched](),
        ),
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("crash_rate", [0.05, 0.4])
def test_equivalence_crash_profiles(seed, crash_rate):
    ts, wids = make_load(seed)
    assert_equivalent(
        ts,
        wids,
        lambda: dict(
            n_nodes=2,
            node_memory_mb=2048.0,
            keepalive=FixedKeepAlive(2.0),
            fault_hook=CrashHook(crash_rate, seed=seed),
            service_time_cv=0.5,
            seed=seed,
        ),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_equivalence_autoscaler_and_memory_tracking(seed):
    ts, wids = make_load(seed, n=400, horizon_s=40.0)
    assert_equivalent(
        ts,
        wids,
        lambda: dict(
            n_nodes=2,
            node_memory_mb=1024.0,
            keepalive=FixedKeepAlive(1.0),
            autoscaler=ReactiveAutoscaler(
                min_nodes=1,
                max_nodes=5,
                target_busy_per_node=2.0,
                evaluate_every_s=2.0,
                scale_down_grace_s=4.0,
            ),
            track_memory=True,
        ),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_equivalence_queue_pressure_and_drops(seed):
    # tight memory so requests queue, time out, and drop
    ts, wids = make_load(seed, n=250, horizon_s=2.0)
    ref, vec = assert_equivalent(
        ts,
        wids,
        lambda: dict(
            n_nodes=1,
            node_memory_mb=640.0,
            keepalive=NoKeepAlive(),
            queue_timeout_s=1.0,
            cores_per_node=2,
        ),
    )
    assert ref["dropped"], "config must actually exercise drops"


def test_equivalence_trace_streams():
    ts, wids = make_load(3, n=300, horizon_s=6.0)
    tracers = {}

    def make(cls_name):
        tracer = tracers[cls_name] = PlatformTracer()
        return dict(
            n_nodes=2,
            node_memory_mb=768.0,
            keepalive=FixedKeepAlive(0.8),
            queue_timeout_s=2.0,
            tracer=tracer,
        )

    run_engine(ObjectFaaSCluster, ts, wids, lambda: make("ref"))
    run_engine(FaaSCluster, ts, wids, lambda: make("vec"))
    assert tracers["vec"].events == tracers["ref"].events


# ---------------------------------------------------------------------------
# the bulk fast path against the scalar oracle
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "sched", ["least-loaded", "random", "power-of-two", "locality", "hash"]
)
def test_bulk_path_matches_object_loop(seed, sched):
    single_node_only = sched != "random"
    ts, wids = make_load(seed)
    make_kwargs = lambda: dict(  # noqa: E731
        n_nodes=1 if single_node_only else 3,
        node_memory_mb=8192.0,
        keepalive=NoKeepAlive(),
        scheduler=SCHEDULERS[sched](),
    )
    # prove the vectorised path actually engages for this configuration
    probe = FaaSCluster(make_profiles(), **make_kwargs())
    probe.invoke_many(ts, wids)
    assert probe._tail is not None and not probe._heap, (
        "bulk path did not engage; this test would only re-test the "
        "scalar loop"
    )
    assert_equivalent(ts, wids, make_kwargs, batch=True)


def test_bulk_tail_interleaves_with_scalar_traffic():
    ts, wids = make_load(4, n=400)
    half = 200
    profiles = make_profiles()

    ref = ObjectFaaSCluster(
        profiles, n_nodes=2, node_memory_mb=8192.0,
        keepalive=NoKeepAlive(), scheduler=RandomScheduler(seed=5),
    )
    vec = FaaSCluster(
        profiles, n_nodes=2, node_memory_mb=8192.0,
        keepalive=NoKeepAlive(), scheduler=RandomScheduler(seed=5),
    )
    for t, w in zip(ts[:half].tolist(), wids[:half]):
        ref.invoke(t, w)
    vec.invoke_many(ts[:half], wids[:half])
    assert vec._tail is not None
    # scalar traffic lands while bulk completions are still outstanding
    for t, w in zip(ts[half:].tolist(), wids[half:]):
        ref.invoke(t, w)
        vec.invoke(t, w)
    assert vec.drain() == ref.drain()
    assert vec.clock_s == ref.clock_s
    assert [n.used_memory_mb for n in vec.nodes] == [
        n.used_memory_mb for n in ref.nodes
    ]


def test_bulk_infeasible_slab_falls_back_identically():
    # a burst a 512 MiB node cannot admit outright: the bulk path must
    # detect infeasibility, rewind the scheduler RNG, and replay the
    # slab through the scalar loop with identical queueing and drops
    rng = np.random.default_rng(1)
    ts = np.sort(rng.uniform(0.0, 0.5, 300))
    wids = [f"w{int(i)}" for i in rng.integers(0, 6, 300)]
    make_kwargs = lambda: dict(  # noqa: E731
        n_nodes=1,
        node_memory_mb=512.0,
        keepalive=NoKeepAlive(),
        scheduler=RandomScheduler(seed=4),
        queue_timeout_s=3.0,
    )
    probe = FaaSCluster(make_profiles(), **make_kwargs())
    probe.invoke_many(ts, wids)
    assert probe._tail is None, "slab must be infeasible for this test"
    ref, _vec = assert_equivalent(ts, wids, make_kwargs, batch=True)
    assert ref["dropped"]


def test_bulk_unknown_workload_raises_like_the_loop():
    ts, wids = make_load(0, n=50)
    wids = list(wids)
    wids[30] = "not-a-workload"
    profiles = make_profiles()

    def run(cls, batch):
        cluster = cls(
            profiles, n_nodes=2, node_memory_mb=8192.0,
            keepalive=NoKeepAlive(), scheduler=RandomScheduler(seed=0),
        )
        with pytest.raises(KeyError, match="not-a-workload"):
            if batch:
                cluster.invoke_many(ts, wids)
            else:
                for t, w in zip(ts.tolist(), wids):
                    cluster.invoke(t, w)
        return cluster.drain()

    assert run(FaaSCluster, True) == run(ObjectFaaSCluster, False)


def test_bulk_rejects_requests_behind_the_clock():
    cluster = FaaSCluster(
        make_profiles(), n_nodes=1, node_memory_mb=8192.0,
        keepalive=NoKeepAlive(),
    )
    cluster.invoke(10.0, "w0")
    cluster.drain()  # clock is now past 10
    with pytest.raises(ValueError, match="past"):
        cluster.invoke_many(np.array([1.0, 2.0]), ["w0", "w1"])


def test_bulk_rejects_unsorted_slab_like_the_loop():
    # a non-monotone slab must raise exactly where the per-element loop
    # would: after the in-order prefix is admitted
    cluster = FaaSCluster(
        make_profiles(), n_nodes=1, node_memory_mb=8192.0,
        keepalive=NoKeepAlive(),
    )
    with pytest.raises(ValueError, match="past"):
        cluster.invoke_many(np.array([1.0, 5.0, 2.0]), ["w0"] * 3)
    assert len(cluster.drain()) == 2  # the prefix before the bad element


def test_record_store_growth_past_initial_capacity():
    # both the scalar append and the bulk extend must grow the columns
    # transparently past the initial 1024-row capacity
    profiles = {"w0": WorkloadProfile("w0", runtime_ms=5.0, memory_mb=64.0)}
    n = 3000
    ts = np.linspace(0.0, 300.0, n)

    bulk = FaaSCluster(
        profiles, n_nodes=1, node_memory_mb=8192.0, keepalive=NoKeepAlive()
    )
    bulk.invoke_many(ts, ["w0"] * n)
    scalar = FaaSCluster(
        profiles, n_nodes=1, node_memory_mb=8192.0, keepalive=NoKeepAlive()
    )
    for t in ts.tolist():
        scalar.invoke(t, "w0")
    assert bulk.drain() == scalar.drain()
    cols = bulk.record_columns()
    assert len(cols) == n
    # derived columns agree with the scalar record properties
    recs = scalar.records
    assert cols.service_ms[0] == recs[0].service_ms
    assert cols.latency_ms[-1] == recs[-1].latency_ms


def test_invoke_many_input_validation():
    cluster = FaaSCluster(make_profiles())
    with pytest.raises(ValueError, match="one-dimensional"):
        cluster.invoke_many(np.zeros((2, 2)), ["w0"] * 4)
    with pytest.raises(ValueError, match="workload ids"):
        cluster.invoke_many(np.zeros(3), ["w0"] * 2)
    cluster.invoke_many(np.empty(0), [])  # no-op, not an error
    assert cluster.drain() == []


# ---------------------------------------------------------------------------
# columnar access and metrics parity
# ---------------------------------------------------------------------------
def test_drain_columns_and_summaries_match_object_engine():
    ts, wids = make_load(2)
    make_kwargs = lambda: dict(  # noqa: E731
        n_nodes=3,
        node_memory_mb=8192.0,
        keepalive=NoKeepAlive(),
        scheduler=RandomScheduler(seed=1),
    )
    ref = ObjectFaaSCluster(make_profiles(), **make_kwargs())
    for t, w in zip(ts.tolist(), wids):
        ref.invoke(t, w)
    ref_records = ref.drain()

    vec = FaaSCluster(make_profiles(), **make_kwargs())
    vec.invoke_many(ts, wids)
    cols = vec.drain_columns()

    assert cols.to_records() == ref_records
    assert cols.workload_ids() == [r.workload_id for r in ref_records]
    assert summarize_columns(cols) == summarize(ref_records)
    assert len(cols) == len(ref_records)


def test_records_property_is_stable_and_lazy():
    ts, wids = make_load(0, n=40)
    cluster = FaaSCluster(make_profiles(), keepalive=NoKeepAlive())
    cluster.invoke_many(ts[:20], wids[:20])
    first = cluster.records
    assert cluster.records is first  # decorators rely on the identity
    n_before = len(first)
    for t, w in zip(ts[20:].tolist(), wids[20:]):
        cluster.invoke(t, w)
    assert cluster.drain() is first  # same list, now fully materialised
    assert len(first) == 40
    assert n_before <= 40
    cols = cluster.record_columns()
    assert cols.to_records() == first


# ---------------------------------------------------------------------------
# expiry/crash double-reclaim regression (ISSUE 7 satellite)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cls", [ObjectFaaSCluster, FaaSCluster])
def test_expiry_after_crash_never_double_reclaims(cls):
    """A sandbox that crashes must not be reclaimed again by its queued
    expiry event.

    Scenario: warm sandbox sits idle with an expiry queued, gets reused,
    then crashes mid-run.  The crash frees its memory; the stale expiry
    event still pops later and -- without the generation counter -- would
    free the same memory twice, driving ``used_memory_mb`` negative and
    letting the node over-admit.
    """

    class CrashSecond:
        """Crash exactly the second invocation, mid-service."""

        def __init__(self):
            self.calls = 0

        def crash_fraction(self, now_s, node_id, workload_id):
            self.calls += 1
            return 0.5 if self.calls == 2 else None

    profiles = {"w": WorkloadProfile("w", runtime_ms=100.0, memory_mb=256.0)}
    cluster = cls(
        profiles,
        n_nodes=1,
        node_memory_mb=512.0,
        keepalive=FixedKeepAlive(5.0),
        fault_hook=CrashSecond(),
    )
    cluster.invoke(0.0, "w")   # cold; finishes ~0.455, expiry queued @ ~5.455
    cluster.invoke(1.0, "w")   # warm reuse; crashes at half service
    records = cluster.drain()  # stale expiry event pops during drain
    node = cluster.nodes[0]
    assert node.used_memory_mb == 0.0
    assert node.busy_count == 0
    assert node.idle_count == 0
    assert [r.ok for r in records] == [True, False]


@pytest.mark.parametrize("cls", [ObjectFaaSCluster, FaaSCluster])
def test_eviction_cancels_queued_expiry(cls):
    """An evicted sandbox's queued expiry must be a no-op, not a second
    reclaim of memory that a new tenant now owns."""
    profiles = {
        "big": WorkloadProfile("big", runtime_ms=50.0, memory_mb=400.0),
        "small": WorkloadProfile("small", runtime_ms=4000.0, memory_mb=200.0),
    }
    cluster = cls(
        profiles,
        n_nodes=1,
        node_memory_mb=512.0,
        keepalive=FixedKeepAlive(2.0),
    )
    cluster.invoke(0.0, "big")    # idle ~0.52s, expiry queued @ ~2.52
    cluster.invoke(1.0, "small")  # evicts big to fit; runs past the expiry
    # drain pops big's stale expiry (must be a generation-guarded no-op:
    # a second remove_idle would raise or double-free 400 MiB) and then
    # small's own expiry, leaving the node exactly empty
    records = cluster.drain()
    node = cluster.nodes[0]
    assert len(records) == 2
    assert node.busy_count == 0
    assert node.used_memory_mb == 0.0
    assert node.idle_count == 0
