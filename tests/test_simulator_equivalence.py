"""Differential equivalence: array engine vs reference object engine.

The headline contract of ISSUE 7: for every configuration, the
array-native :class:`~repro.platform.simulator_vec.FaaSCluster` and the
reference :class:`~repro.platform.simulator.ObjectFaaSCluster` produce
*byte-identical* invocation records, clocks, drops, memory samples, and
trace streams.  Policies are stateful, so each engine run constructs its
own fresh policy objects from a factory -- sharing one RNG-bearing
scheduler between runs would compare a run against its own side effects.
"""

import numpy as np
import pytest

from repro.platform import (
    CpuModel,
    CrashHook,
    FaaSCluster,
    FairShareCpu,
    FifoCpu,
    FixedKeepAlive,
    HashAffinityScheduler,
    HistogramKeepAlive,
    HybridHistogramKeepAlive,
    LeastLoadedScheduler,
    LocalityAwareScheduler,
    NoKeepAlive,
    ObjectFaaSCluster,
    PlatformTracer,
    PowerOfTwoScheduler,
    RandomScheduler,
    ReactiveAutoscaler,
    ShortestFirstCpu,
    WorkloadProfile,
    iter_trace_slabs,
    summarize,
    summarize_columns,
)

SEEDS = (0, 1, 2)

KEEPALIVES = {
    "none": NoKeepAlive,
    "fixed": lambda: FixedKeepAlive(1.5),
    "histogram": lambda: HistogramKeepAlive(
        default_ttl_s=1.5, min_ttl_s=0.1, window=32, min_observations=4
    ),
}

SCHEDULERS = {
    "least-loaded": LeastLoadedScheduler,
    "random": lambda: RandomScheduler(seed=7),
    "power-of-two": lambda: PowerOfTwoScheduler(seed=7),
    "locality": LocalityAwareScheduler,
    "hash": HashAffinityScheduler,
}


def make_profiles(n=6):
    return {
        f"w{i}": WorkloadProfile(
            f"w{i}",
            runtime_ms=40.0 + 17.0 * i,
            memory_mb=128.0 * (1 + i % 4),
        )
        for i in range(n)
    }


def make_load(seed, n=300, horizon_s=20.0, n_workloads=6):
    rng = np.random.default_rng(seed)
    ts = np.sort(rng.uniform(0.0, horizon_s, n))
    wids = [f"w{int(i)}" for i in rng.integers(0, n_workloads, n)]
    return ts, wids


def submit(cluster, ts, wids, mode):
    """Feed one load through a cluster in the given submission mode."""
    if mode == "scalar":
        for t, w in zip(ts.tolist(), wids):
            cluster.invoke(t, w)
    elif mode == "bulk":
        cluster.invoke_many(ts, wids)
    elif mode == "mixed":
        half = len(wids) // 2
        cluster.invoke_many(ts[:half], wids[:half])
        for t, w in zip(ts[half:].tolist(), wids[half:]):
            cluster.invoke(t, w)
    elif mode.startswith("chunked"):
        chunk = int(mode.split("-")[1])
        cluster.invoke_chunked(iter_trace_slabs(ts, wids, chunk_rows=chunk))
    else:
        raise ValueError(mode)


def run_engine(cls, ts, wids, make_kwargs, *, batch=False, mode=None):
    """One full run on a freshly-built cluster; returns its observables."""
    cluster = cls(make_profiles(), **make_kwargs())
    if mode is not None:
        submit(cluster, ts, wids, mode)
    elif batch:
        cluster.invoke_many(ts, wids)
    else:
        for t, w in zip(ts.tolist(), wids):
            cluster.invoke(t, w)
    records = cluster.drain()
    return {
        "records": records,
        "clock": cluster.clock_s,
        "dropped": cluster.dropped,
        "memory_samples": cluster.memory_samples,
        "n_nodes": len(cluster.nodes),
        "node_state": [
            (n.node_id, n.used_memory_mb, n.busy_count, n.idle_count,
             n.cpu_weight)
            for n in cluster.nodes
        ],
    }


def assert_equivalent(ts, wids, make_kwargs, *, batch=False, mode=None):
    ref = run_engine(ObjectFaaSCluster, ts, wids, make_kwargs)
    vec = run_engine(FaaSCluster, ts, wids, make_kwargs,
                     batch=batch, mode=mode)
    assert vec["records"] == ref["records"]
    assert vec["clock"] == ref["clock"]
    assert vec["dropped"] == ref["dropped"]
    assert vec["memory_samples"] == ref["memory_samples"]
    assert vec["n_nodes"] == ref["n_nodes"]
    assert vec["node_state"] == ref["node_state"]
    return ref, vec


# ---------------------------------------------------------------------------
# the core matrix: seeds x keep-alive policies x schedulers
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("ka", sorted(KEEPALIVES))
@pytest.mark.parametrize("sched", sorted(SCHEDULERS))
def test_equivalence_matrix(seed, ka, sched):
    ts, wids = make_load(seed)
    assert_equivalent(
        ts,
        wids,
        lambda: dict(
            n_nodes=3,
            node_memory_mb=1024.0,
            keepalive=KEEPALIVES[ka](),
            scheduler=SCHEDULERS[sched](),
        ),
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("crash_rate", [0.05, 0.4])
def test_equivalence_crash_profiles(seed, crash_rate):
    ts, wids = make_load(seed)
    assert_equivalent(
        ts,
        wids,
        lambda: dict(
            n_nodes=2,
            node_memory_mb=2048.0,
            keepalive=FixedKeepAlive(2.0),
            fault_hook=CrashHook(crash_rate, seed=seed),
            service_time_cv=0.5,
            seed=seed,
        ),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_equivalence_autoscaler_and_memory_tracking(seed):
    ts, wids = make_load(seed, n=400, horizon_s=40.0)
    assert_equivalent(
        ts,
        wids,
        lambda: dict(
            n_nodes=2,
            node_memory_mb=1024.0,
            keepalive=FixedKeepAlive(1.0),
            autoscaler=ReactiveAutoscaler(
                min_nodes=1,
                max_nodes=5,
                target_busy_per_node=2.0,
                evaluate_every_s=2.0,
                scale_down_grace_s=4.0,
            ),
            track_memory=True,
        ),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_equivalence_queue_pressure_and_drops(seed):
    # tight memory so requests queue, time out, and drop
    ts, wids = make_load(seed, n=250, horizon_s=2.0)
    ref, vec = assert_equivalent(
        ts,
        wids,
        lambda: dict(
            n_nodes=1,
            node_memory_mb=640.0,
            keepalive=NoKeepAlive(),
            queue_timeout_s=1.0,
            cores_per_node=2,
        ),
    )
    assert ref["dropped"], "config must actually exercise drops"


def test_equivalence_trace_streams():
    ts, wids = make_load(3, n=300, horizon_s=6.0)
    tracers = {}

    def make(cls_name):
        tracer = tracers[cls_name] = PlatformTracer()
        return dict(
            n_nodes=2,
            node_memory_mb=768.0,
            keepalive=FixedKeepAlive(0.8),
            queue_timeout_s=2.0,
            tracer=tracer,
        )

    run_engine(ObjectFaaSCluster, ts, wids, lambda: make("ref"))
    run_engine(FaaSCluster, ts, wids, lambda: make("vec"))
    assert tracers["vec"].events == tracers["ref"].events


# ---------------------------------------------------------------------------
# the bulk fast path against the scalar oracle
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "sched", ["least-loaded", "random", "power-of-two", "locality", "hash"]
)
def test_bulk_path_matches_object_loop(seed, sched):
    single_node_only = sched != "random"
    ts, wids = make_load(seed)
    make_kwargs = lambda: dict(  # noqa: E731
        n_nodes=1 if single_node_only else 3,
        node_memory_mb=8192.0,
        keepalive=NoKeepAlive(),
        scheduler=SCHEDULERS[sched](),
    )
    # prove the vectorised path actually engages for this configuration
    probe = FaaSCluster(make_profiles(), **make_kwargs())
    probe.invoke_many(ts, wids)
    assert probe._tail is not None and not probe._heap, (
        "bulk path did not engage; this test would only re-test the "
        "scalar loop"
    )
    assert_equivalent(ts, wids, make_kwargs, batch=True)


def test_bulk_tail_interleaves_with_scalar_traffic():
    ts, wids = make_load(4, n=400)
    half = 200
    profiles = make_profiles()

    ref = ObjectFaaSCluster(
        profiles, n_nodes=2, node_memory_mb=8192.0,
        keepalive=NoKeepAlive(), scheduler=RandomScheduler(seed=5),
    )
    vec = FaaSCluster(
        profiles, n_nodes=2, node_memory_mb=8192.0,
        keepalive=NoKeepAlive(), scheduler=RandomScheduler(seed=5),
    )
    for t, w in zip(ts[:half].tolist(), wids[:half]):
        ref.invoke(t, w)
    vec.invoke_many(ts[:half], wids[:half])
    assert vec._tail is not None
    # scalar traffic lands while bulk completions are still outstanding
    for t, w in zip(ts[half:].tolist(), wids[half:]):
        ref.invoke(t, w)
        vec.invoke(t, w)
    assert vec.drain() == ref.drain()
    assert vec.clock_s == ref.clock_s
    assert [n.used_memory_mb for n in vec.nodes] == [
        n.used_memory_mb for n in ref.nodes
    ]


def test_bulk_infeasible_slab_falls_back_identically():
    # a burst a 512 MiB node cannot admit outright: the bulk path must
    # detect infeasibility, rewind the scheduler RNG, and replay the
    # slab through the scalar loop with identical queueing and drops
    rng = np.random.default_rng(1)
    ts = np.sort(rng.uniform(0.0, 0.5, 300))
    wids = [f"w{int(i)}" for i in rng.integers(0, 6, 300)]
    make_kwargs = lambda: dict(  # noqa: E731
        n_nodes=1,
        node_memory_mb=512.0,
        keepalive=NoKeepAlive(),
        scheduler=RandomScheduler(seed=4),
        queue_timeout_s=3.0,
    )
    probe = FaaSCluster(make_profiles(), **make_kwargs())
    probe.invoke_many(ts, wids)
    assert probe._tail is None, "slab must be infeasible for this test"
    ref, _vec = assert_equivalent(ts, wids, make_kwargs, batch=True)
    assert ref["dropped"]


def test_bulk_unknown_workload_raises_like_the_loop():
    ts, wids = make_load(0, n=50)
    wids = list(wids)
    wids[30] = "not-a-workload"
    profiles = make_profiles()

    def run(cls, batch):
        cluster = cls(
            profiles, n_nodes=2, node_memory_mb=8192.0,
            keepalive=NoKeepAlive(), scheduler=RandomScheduler(seed=0),
        )
        with pytest.raises(KeyError, match="not-a-workload"):
            if batch:
                cluster.invoke_many(ts, wids)
            else:
                for t, w in zip(ts.tolist(), wids):
                    cluster.invoke(t, w)
        return cluster.drain()

    assert run(FaaSCluster, True) == run(ObjectFaaSCluster, False)


def test_bulk_rejects_requests_behind_the_clock():
    cluster = FaaSCluster(
        make_profiles(), n_nodes=1, node_memory_mb=8192.0,
        keepalive=NoKeepAlive(),
    )
    cluster.invoke(10.0, "w0")
    cluster.drain()  # clock is now past 10
    with pytest.raises(ValueError, match="past"):
        cluster.invoke_many(np.array([1.0, 2.0]), ["w0", "w1"])


def test_bulk_rejects_unsorted_slab_like_the_loop():
    # a non-monotone slab must raise exactly where the per-element loop
    # would: after the in-order prefix is admitted
    cluster = FaaSCluster(
        make_profiles(), n_nodes=1, node_memory_mb=8192.0,
        keepalive=NoKeepAlive(),
    )
    with pytest.raises(ValueError, match="past"):
        cluster.invoke_many(np.array([1.0, 5.0, 2.0]), ["w0"] * 3)
    assert len(cluster.drain()) == 2  # the prefix before the bad element


def test_record_store_growth_past_initial_capacity():
    # both the scalar append and the bulk extend must grow the columns
    # transparently past the initial 1024-row capacity
    profiles = {"w0": WorkloadProfile("w0", runtime_ms=5.0, memory_mb=64.0)}
    n = 3000
    ts = np.linspace(0.0, 300.0, n)

    bulk = FaaSCluster(
        profiles, n_nodes=1, node_memory_mb=8192.0, keepalive=NoKeepAlive()
    )
    bulk.invoke_many(ts, ["w0"] * n)
    scalar = FaaSCluster(
        profiles, n_nodes=1, node_memory_mb=8192.0, keepalive=NoKeepAlive()
    )
    for t in ts.tolist():
        scalar.invoke(t, "w0")
    assert bulk.drain() == scalar.drain()
    cols = bulk.record_columns()
    assert len(cols) == n
    # derived columns agree with the scalar record properties
    recs = scalar.records
    assert cols.service_ms[0] == recs[0].service_ms
    assert cols.latency_ms[-1] == recs[-1].latency_ms


def test_invoke_many_input_validation():
    cluster = FaaSCluster(make_profiles())
    with pytest.raises(ValueError, match="one-dimensional"):
        cluster.invoke_many(np.zeros((2, 2)), ["w0"] * 4)
    with pytest.raises(ValueError, match="workload ids"):
        cluster.invoke_many(np.zeros(3), ["w0"] * 2)
    cluster.invoke_many(np.empty(0), [])  # no-op, not an error
    assert cluster.drain() == []


# ---------------------------------------------------------------------------
# the widened bulk envelope: keep-alive x jitter x submission x scheduler
# ---------------------------------------------------------------------------
#: Schedulers that keep a multi-node slab on the fast path (the rest are
#: exercised single-node by the matrix below).
BULK_SCHEDULERS = {
    "random": lambda: RandomScheduler(seed=7),
    "hash": lambda: HashAffinityScheduler(spill_threshold=64),
    "least-loaded": LeastLoadedScheduler,
}

BULK_MODES = ("bulk", "mixed", "chunked-7", "chunked-64")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("ka", ["none", "fixed-short", "fixed-long"])
@pytest.mark.parametrize("cv", [0.0, 0.6], ids=["nojit", "jitter"])
@pytest.mark.parametrize("mode", BULK_MODES)
@pytest.mark.parametrize("sched", sorted(BULK_SCHEDULERS))
def test_bulk_envelope_matrix(seed, ka, cv, mode, sched):
    """Byte-identity across the full widened envelope, with proof that
    every cell actually engages the vectorised path."""
    keepalive = {
        "none": NoKeepAlive,
        "fixed-short": lambda: FixedKeepAlive(0.8),
        "fixed-long": lambda: FixedKeepAlive(30.0),
    }[ka]
    ts, wids = make_load(seed)
    make_kwargs = lambda: dict(  # noqa: E731
        n_nodes=1 if sched == "least-loaded" else 3,
        node_memory_mb=16384.0,
        keepalive=keepalive(),
        scheduler=BULK_SCHEDULERS[sched](),
        service_time_cv=cv,
        seed=seed,
    )
    # prove the vectorised path engages for every slab of this cell
    probe = FaaSCluster(make_profiles(), **make_kwargs())
    submit(probe, ts, wids, "bulk" if mode == "mixed" else mode)
    assert probe._tail is not None and not probe._heap, (
        "bulk path did not engage; this cell would only re-test the "
        "scalar loop"
    )
    assert_equivalent(ts, wids, make_kwargs, mode=mode)


@pytest.mark.parametrize("mode", BULK_MODES)
def test_zero_ttl_fixed_keepalive_is_bulk_teardown(mode):
    """FixedKeepAlive(0) must behave exactly like NoKeepAlive -- and
    still take the fast path (it routes to the teardown commit)."""
    ts, wids = make_load(5)
    make_kwargs = lambda: dict(  # noqa: E731
        n_nodes=3,
        node_memory_mb=16384.0,
        keepalive=FixedKeepAlive(0.0),
        scheduler=RandomScheduler(seed=7),
    )
    probe = FaaSCluster(make_profiles(), **make_kwargs())
    probe.invoke_many(ts, wids)
    assert probe._tail is not None and not probe._heap
    assert probe._tail.ttl == 0.0 and probe._tail.idle_from.size == 0
    assert_equivalent(ts, wids, make_kwargs, mode=mode)


def test_keepalive_tail_interleaves_with_scalar_traffic():
    """Scalar traffic after a keep-alive slab must see the carried warm
    sandboxes (reuse, LRU eviction order, pending expiries) exactly as
    the reference engine does."""
    ts, wids = make_load(4, n=400)
    half = 200
    profiles = make_profiles()

    def build(cls):
        return cls(
            profiles, n_nodes=2, node_memory_mb=16384.0,
            keepalive=FixedKeepAlive(5.0), scheduler=RandomScheduler(seed=5),
            service_time_cv=0.4, seed=9,
        )

    ref, vec = build(ObjectFaaSCluster), build(FaaSCluster)
    for t, w in zip(ts[:half].tolist(), wids[:half]):
        ref.invoke(t, w)
    vec.invoke_many(ts[:half], wids[:half])
    assert vec._tail is not None and vec._tail.idle_from.size > 0, (
        "slab must leave warm sandboxes behind for this test to bite"
    )
    for t, w in zip(ts[half:].tolist(), wids[half:]):
        ref.invoke(t, w)
        vec.invoke(t, w)
    assert vec.drain() == ref.drain()
    assert vec.clock_s == ref.clock_s
    assert [
        (n.used_memory_mb, n.busy_count, n.idle_count) for n in vec.nodes
    ] == [
        (n.used_memory_mb, n.busy_count, n.idle_count) for n in ref.nodes
    ]


# ---------------------------------------------------------------------------
# chunk-boundary regressions
# ---------------------------------------------------------------------------
def _boundary_profiles():
    # memory 125 MiB makes the default cold model exactly 0.25 s, so
    # every timestamp below is an exact binary float and "expiry lands
    # exactly on an arrival" is a true float equality, not an approx
    return {"w0": WorkloadProfile("w0", runtime_ms=125.0, memory_mb=125.0)}


def _run_boundary(cls, ts, wids, slab_edges=None, ttl=0.65):
    cluster = cls(
        _boundary_profiles(), n_nodes=1, node_memory_mb=8192.0,
        keepalive=FixedKeepAlive(ttl),
    )
    if slab_edges is None:
        for t, w in zip(ts.tolist(), wids):
            cluster.invoke(t, w)
    else:
        lo = 0
        for hi in list(slab_edges) + [len(wids)]:
            cluster.invoke_many(ts[lo:hi], wids[lo:hi])
            lo = hi
    records = cluster.drain()
    node = cluster.nodes[0]
    return records, cluster.clock_s, (
        node.used_memory_mb, node.busy_count, node.idle_count
    )


def test_chunk_edge_straddled_by_tail_completion():
    """A completion (and its later expiry) from chunk 1 lands *between*
    chunk 2's arrivals; the carry must fold it into chunk 2's event
    calendar at exactly the right position."""
    # arrival 0.0: start 0.25 (cold), end 0.375, expiry 1.025
    ts = np.array([0.0, 0.5, 0.625, 1.5])
    wids = ["w0"] * 4
    ref = _run_boundary(ObjectFaaSCluster, ts, wids)
    for edges in ([1], [2], [3], [1, 2], [1, 3], [1, 2, 3]):
        assert _run_boundary(FaaSCluster, ts, wids, edges) == ref, edges


def test_expiry_exactly_on_slab_last_arrival():
    """An expiry whose time equals a slab's last arrival must fire
    *before* that arrival (heap pops events <= t), forcing a cold start
    -- in every chunking."""
    # arrival 0.0: end 0.375, expiry at 0.375 + 0.65 = 1.025 == arrival 3
    ts = np.array([0.0, 1.025, 2.0])
    wids = ["w0"] * 3
    ref_records, ref_clock, ref_node = _run_boundary(
        ObjectFaaSCluster, ts, wids
    )
    # the arrival at the expiry instant must indeed have gone cold
    assert [r.cold for r in ref_records] == [True, True, False]
    for edges in ([1], [2], [1, 2]):
        got = _run_boundary(FaaSCluster, ts, wids, edges)
        assert got == (ref_records, ref_clock, ref_node), edges


def test_completion_exactly_on_slab_last_arrival_is_warm():
    """The mirror case: a completion landing exactly on the slab's last
    arrival is processed first, so that arrival reuses the sandbox."""
    # arrival 0.0: end at 0.375 == second arrival -> warm reuse
    ts = np.array([0.0, 0.375, 0.5])
    wids = ["w0"] * 3
    ref_records, ref_clock, ref_node = _run_boundary(
        ObjectFaaSCluster, ts, wids
    )
    assert [r.cold for r in ref_records] == [True, False, False]
    for edges in ([1], [2], [1, 2]):
        got = _run_boundary(FaaSCluster, ts, wids, edges)
        assert got == (ref_records, ref_clock, ref_node), edges


def test_iter_trace_slabs_validation_and_coverage():
    ts = np.arange(10, dtype=np.float64)
    wids = [f"w{i}" for i in range(10)]
    slabs = list(iter_trace_slabs(ts, wids, chunk_rows=4))
    assert [len(w) for _, w in slabs] == [4, 4, 2]
    assert np.concatenate([t for t, _ in slabs]).tolist() == ts.tolist()
    assert [w for _, ws in slabs for w in ws] == wids
    with pytest.raises(ValueError, match="positive"):
        list(iter_trace_slabs(ts, wids, chunk_rows=0))
    with pytest.raises(ValueError, match="workload ids"):
        list(iter_trace_slabs(ts, wids[:5]))
    with pytest.raises(ValueError, match="one-dimensional"):
        list(iter_trace_slabs(np.zeros((2, 5)), wids))


# ---------------------------------------------------------------------------
# columnar access and metrics parity
# ---------------------------------------------------------------------------
def test_drain_columns_and_summaries_match_object_engine():
    ts, wids = make_load(2)
    make_kwargs = lambda: dict(  # noqa: E731
        n_nodes=3,
        node_memory_mb=8192.0,
        keepalive=NoKeepAlive(),
        scheduler=RandomScheduler(seed=1),
    )
    ref = ObjectFaaSCluster(make_profiles(), **make_kwargs())
    for t, w in zip(ts.tolist(), wids):
        ref.invoke(t, w)
    ref_records = ref.drain()

    vec = FaaSCluster(make_profiles(), **make_kwargs())
    vec.invoke_many(ts, wids)
    cols = vec.drain_columns()

    assert cols.to_records() == ref_records
    assert cols.workload_ids() == [r.workload_id for r in ref_records]
    assert summarize_columns(cols) == summarize(ref_records)
    assert len(cols) == len(ref_records)


def test_records_property_is_stable_and_lazy():
    ts, wids = make_load(0, n=40)
    cluster = FaaSCluster(make_profiles(), keepalive=NoKeepAlive())
    cluster.invoke_many(ts[:20], wids[:20])
    first = cluster.records
    assert cluster.records is first  # decorators rely on the identity
    n_before = len(first)
    for t, w in zip(ts[20:].tolist(), wids[20:]):
        cluster.invoke(t, w)
    assert cluster.drain() is first  # same list, now fully materialised
    assert len(first) == 40
    assert n_before <= 40
    cols = cluster.record_columns()
    assert cols.to_records() == first


# ---------------------------------------------------------------------------
# expiry/crash double-reclaim regression (ISSUE 7 satellite)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cls", [ObjectFaaSCluster, FaaSCluster])
def test_expiry_after_crash_never_double_reclaims(cls):
    """A sandbox that crashes must not be reclaimed again by its queued
    expiry event.

    Scenario: warm sandbox sits idle with an expiry queued, gets reused,
    then crashes mid-run.  The crash frees its memory; the stale expiry
    event still pops later and -- without the generation counter -- would
    free the same memory twice, driving ``used_memory_mb`` negative and
    letting the node over-admit.
    """

    class CrashSecond:
        """Crash exactly the second invocation, mid-service."""

        def __init__(self):
            self.calls = 0

        def crash_fraction(self, now_s, node_id, workload_id):
            self.calls += 1
            return 0.5 if self.calls == 2 else None

    profiles = {"w": WorkloadProfile("w", runtime_ms=100.0, memory_mb=256.0)}
    cluster = cls(
        profiles,
        n_nodes=1,
        node_memory_mb=512.0,
        keepalive=FixedKeepAlive(5.0),
        fault_hook=CrashSecond(),
    )
    cluster.invoke(0.0, "w")   # cold; finishes ~0.455, expiry queued @ ~5.455
    cluster.invoke(1.0, "w")   # warm reuse; crashes at half service
    records = cluster.drain()  # stale expiry event pops during drain
    node = cluster.nodes[0]
    assert node.used_memory_mb == 0.0
    assert node.busy_count == 0
    assert node.idle_count == 0
    assert [r.ok for r in records] == [True, False]


@pytest.mark.parametrize("cls", [ObjectFaaSCluster, FaaSCluster])
def test_eviction_cancels_queued_expiry(cls):
    """An evicted sandbox's queued expiry must be a no-op, not a second
    reclaim of memory that a new tenant now owns."""
    profiles = {
        "big": WorkloadProfile("big", runtime_ms=50.0, memory_mb=400.0),
        "small": WorkloadProfile("small", runtime_ms=4000.0, memory_mb=200.0),
    }
    cluster = cls(
        profiles,
        n_nodes=1,
        node_memory_mb=512.0,
        keepalive=FixedKeepAlive(2.0),
    )
    cluster.invoke(0.0, "big")    # idle ~0.52s, expiry queued @ ~2.52
    cluster.invoke(1.0, "small")  # evicts big to fit; runs past the expiry
    # drain pops big's stale expiry (must be a generation-guarded no-op:
    # a second remove_idle would raise or double-free 400 MiB) and then
    # small's own expiry, leaving the node exactly empty
    records = cluster.drain()
    node = cluster.nodes[0]
    assert len(records) == 2
    assert node.busy_count == 0
    assert node.used_memory_mb == 0.0
    assert node.idle_count == 0


# ----------------------------------------------------------------------
# scalar/bulk parity for the backend decorators (PAR001 registrations)
# ----------------------------------------------------------------------
class _RecordingInner:
    """Minimal inner backend: records the exact call stream it receives."""

    def __init__(self):
        self.calls = []

    def invoke(self, timestamp_s, workload_id):
        self.calls.append((float(timestamp_s), str(workload_id)))

    def drain(self):
        return []


def _faulty_load(n=80, seed=5):
    rng = np.random.default_rng(seed)
    ts = np.sort(rng.uniform(0.0, 30.0, n))
    wids = [f"w{int(i)}" for i in rng.integers(0, 4, n)]
    return ts, wids


@pytest.mark.parametrize("mode", ["scalar", "bulk", "chunked"])
def test_faulty_backend_bulk_matches_scalar_draw_stream(mode):
    """FaultyBackend parity: scalar, bulk, and chunked submission must
    consume the identical fault-draw stream -- same injected counts,
    same inner call sequence, same terminal RNG state."""
    from repro.platform import FaultProfile, FaultyBackend

    profile = FaultProfile(seed=11, latency_spike_rate=0.3,
                           latency_spike_ms=250.0)
    ts, wids = _faulty_load()

    def run(submission):
        inner = _RecordingInner()
        fb = FaultyBackend(inner, profile)
        if submission == "scalar":
            for t, w in zip(ts.tolist(), wids):
                fb.invoke(t, w)
        elif submission == "bulk":
            fb.invoke_many(ts, wids)
        else:
            third = len(wids) // 3
            fb.invoke_chunked([
                (ts[:third], wids[:third]),
                (ts[third:], wids[third:]),
            ])
        return inner.calls, dict(fb.injected), fb._rng.bit_generator.state

    ref_calls, ref_injected, ref_state = run("scalar")
    got_calls, got_injected, got_state = run(mode)
    assert got_calls == ref_calls
    assert got_injected == ref_injected
    assert got_injected["spike"] > 0  # the gauntlet actually drew faults
    assert got_state == ref_state


def test_faulty_backend_bulk_raises_at_the_same_request():
    """An injected error aborts bulk submission at exactly the request
    where the scalar loop would have raised, with the same fault type."""
    from repro.platform import FaultProfile, FaultyBackend
    from repro.platform.faults import InvocationFault

    profile = FaultProfile(seed=3, error_rate=0.05)
    ts, wids = _faulty_load()

    scalar_inner = _RecordingInner()
    fb = FaultyBackend(scalar_inner, profile)
    scalar_exc = None
    for t, w in zip(ts.tolist(), wids):
        try:
            fb.invoke(t, w)
        except InvocationFault as exc:
            scalar_exc = exc
            break
    assert scalar_exc is not None

    bulk_inner = _RecordingInner()
    fb = FaultyBackend(bulk_inner, profile)
    with pytest.raises(InvocationFault) as excinfo:
        fb.invoke_many(ts, wids)
    assert str(excinfo.value) == str(scalar_exc)
    assert bulk_inner.calls == scalar_inner.calls


@pytest.mark.parametrize("mode", ["bulk", "chunked"])
def test_live_backend_bulk_matches_scalar(mode):
    """LiveBackend parity: bulk/chunked submission must produce the same
    record stream as the scalar loop in every deterministic field
    (``end_s`` is wall-clock elapsed and is excluded)."""
    from repro.platform import LiveBackend
    from repro.workloads import Workload, WorkloadPool

    def make_backend():
        pool = WorkloadPool([
            Workload("pyaes:t", "pyaes", {"length": 32, "rounds": 1},
                     1.0, 28.0),
            Workload("matmul:t", "matmul", {"n": 8, "reps": 1}, 1.0, 32.0),
        ])
        return LiveBackend(pool, seed=13, max_cached_payloads=1)

    ts = np.array([0.0, 0.5, 1.0, 1.5, 2.0, 2.5])
    wids = ["pyaes:t", "matmul:t", "pyaes:t", "pyaes:t", "matmul:t",
            "matmul:t"]

    ref = make_backend()
    for t, w in zip(ts.tolist(), wids):
        ref.invoke(t, w)

    got = make_backend()
    if mode == "bulk":
        got.invoke_many(ts, wids)
    else:
        got.invoke_chunked([(ts[:2], wids[:2]), (ts[2:], wids[2:])])

    def key(records):
        return [(r.workload_id, r.node, r.arrival_s, r.start_s, r.cold,
                 r.ok) for r in records]

    assert key(got.drain()) == key(ref.drain())
    assert got.evictions == ref.evictions


# ---------------------------------------------------------------------------
# CPU-contention model (ISSUE 10): cpu-policy x keep-alive (incl. hybrid
# histogram) x scheduler x submission mode, all byte-identical
# ---------------------------------------------------------------------------
CPU_POLICIES = {
    "fifo": FifoCpu,
    "fair": lambda: FairShareCpu(
        weights={f"w{i}": float(1 + i % 3) for i in range(6)}
    ),
    "stf": ShortestFirstCpu,
}

CPU_KEEPALIVES = dict(
    KEEPALIVES,
    hybrid=lambda: HybridHistogramKeepAlive(
        bin_width_s=0.25, n_bins=16, default_ttl_s=1.5, min_observations=4
    ),
)

CPU_MODES = ["scalar", "bulk", "chunked-19"]


def make_cpu_kwargs(pol, ka, sched, *, cores=2, quantum=0.02, **extra):
    def build():
        kwargs = dict(
            n_nodes=3,
            node_memory_mb=2048.0,
            keepalive=CPU_KEEPALIVES[ka](),
            scheduler=SCHEDULERS[sched](),
            cpu=CpuModel(cores=cores, quantum_s=quantum,
                         policy=CPU_POLICIES[pol]()),
        )
        kwargs.update(extra)
        return kwargs

    return build


@pytest.mark.parametrize("mode", CPU_MODES)
@pytest.mark.parametrize("sched", sorted(SCHEDULERS))
@pytest.mark.parametrize("ka", sorted(CPU_KEEPALIVES))
@pytest.mark.parametrize("pol", sorted(CPU_POLICIES))
def test_cpu_equivalence_matrix(pol, ka, sched, mode):
    """The full contention matrix: every CPU policy under every
    keep-alive (the hybrid histogram included) and scheduler, fed
    scalar, bulk, and chunked, against the object-engine oracle."""
    ts, wids = make_load(3, n=200, horizon_s=8.0)
    ref, _ = assert_equivalent(
        ts, wids, make_cpu_kwargs(pol, ka, sched), mode=mode,
    )
    # the load is dense enough that contention genuinely occurred
    assert sum(r.preemptions for r in ref["records"]) > 0


@pytest.mark.parametrize("mode", CPU_MODES)
@pytest.mark.parametrize("pol", sorted(CPU_POLICIES))
def test_cpu_zero_core_headroom(pol, mode):
    """Zero headroom: a single one-core node hit by equal-timestamp
    bursts, so every overlapping request contends.  The engines must
    agree bit-for-bit on the dilated completion cascade."""
    rng = np.random.default_rng(17)
    ts = np.sort(np.round(rng.uniform(0.0, 4.0, 120), 1))  # dense ties
    wids = [f"w{int(i)}" for i in rng.integers(0, 6, 120)]
    ref, _ = assert_equivalent(
        ts, wids,
        make_cpu_kwargs(pol, "none", "least-loaded",
                        cores=1, n_nodes=1, node_memory_mb=8192.0),
        mode=mode,
    )
    by_end = sorted(r.end_s for r in ref["records"])
    assert by_end == [r for r in by_end]  # drained completely
    assert sum(r.preemptions for r in ref["records"]) > 0


@pytest.mark.parametrize("mode", CPU_MODES)
def test_cpu_service_jitter_stream_parity(mode):
    """Service-time jitter draws one RNG stream; under the CPU model the
    bulk path must consume it in exactly the scalar order."""
    ts, wids = make_load(5, n=150, horizon_s=6.0)
    assert_equivalent(
        ts, wids,
        make_cpu_kwargs("fifo", "none", "least-loaded",
                        service_time_cv=0.6, seed=23),
        mode=mode,
    )


@pytest.mark.parametrize("mode", ["scalar", "bulk", "chunked-2"])
def test_cpu_preemption_at_keepalive_expiry_reclaims_once(mode):
    """ISSUE 10 satellite: a request preempted mid-timeslice while an
    idle sandbox on the same node hits keep-alive expiry at the very
    same instant.  The expiry must reclaim memory exactly once, never
    touch the CPU weight (the sandbox was idle, not busy), and the
    arrival landing exactly on the expiry timestamp must go cold --
    identically on both engines, every submission path.

    Hand-built timeline (cold cost = 0.150 + 0.0008 * mem):
      t=0.00  w0 (mem 256, cold 0.3548) -> runs 0.3548..0.4548, idles,
              expiry queued at 0.9548
      t=0.50  w1 (runtime 600ms)        -> cold, alone: no dilation
      t=0.60  w2 (runtime 400ms)        -> concurrent=2 > cores=1:
              dilated, preempted mid-timeslice, still in flight at the
              expiry instant
      t=0.9548  w0 again, exactly at the queued expiry: the expiry event
              pops first (memory reclaimed once), so this arrival is
              cold and contends with both in-flight requests
    """
    profiles = {
        "w0": WorkloadProfile("w0", runtime_ms=100.0, memory_mb=256.0),
        "w1": WorkloadProfile("w1", runtime_ms=600.0, memory_mb=128.0),
        "w2": WorkloadProfile("w2", runtime_ms=400.0, memory_mb=128.0),
    }
    ts = np.array([0.0, 0.5, 0.6, 0.9548])
    wids = ["w0", "w1", "w2", "w0"]

    def build(cls):
        return cls(
            profiles,
            n_nodes=1,
            node_memory_mb=4096.0,
            keepalive=FixedKeepAlive(0.5),
            cpu=CpuModel(cores=1, quantum_s=0.02, policy=FifoCpu()),
            track_memory=True,
        )

    ref = build(ObjectFaaSCluster)
    for t, w in zip(ts.tolist(), wids):
        ref.invoke(t, w)
    ref_records = ref.drain()

    vec = build(FaaSCluster)
    submit(vec, ts, wids, mode)
    vec_records = vec.drain()

    assert vec_records == ref_records
    assert vec.memory_samples == ref.memory_samples
    assert vec.clock_s == ref.clock_s
    assert [(n.used_memory_mb, n.busy_count, n.cpu_weight)
            for n in vec.nodes] == \
        [(n.used_memory_mb, n.busy_count, n.cpu_weight)
         for n in ref.nodes]

    # the scenario really happened as designed
    assert ref_records[2].workload_id == "w2"
    assert ref_records[2].preemptions > 0          # preempted mid-slice
    assert ref_records[3].workload_id == "w0"
    assert ref_records[3].cold                     # expiry fired first
    assert ref_records[3].preemptions > 0          # and it contended
    # exactly-once reclaim: every sample is a plausible running total
    # (a double reclaim would drive the w0 slot negative)
    assert min(s[2] for s in ref.memory_samples) >= 0.0
    reclaim_at_expiry = [
        s for s in ref.memory_samples if s[0] == pytest.approx(0.9548)
    ]
    assert len(reclaim_at_expiry) > 0


@pytest.mark.parametrize("cls", [ObjectFaaSCluster, FaaSCluster])
def test_cpu_weight_returns_to_zero_after_drain(cls):
    """Work conservation at the ledger level: once everything drains,
    every node's run-queue weight folds back to exactly 0.0."""
    ts, wids = make_load(9, n=180, horizon_s=6.0)
    cluster = cls(
        make_profiles(),
        n_nodes=2,
        node_memory_mb=2048.0,
        keepalive=FixedKeepAlive(0.3),
        cpu=CpuModel(cores=2, quantum_s=0.02, policy=FairShareCpu(
            weights={f"w{i}": float(1 + i % 3) for i in range(6)}
        )),
    )
    for t, w in zip(ts.tolist(), wids):
        cluster.invoke(t, w)
    cluster.drain()
    for node in cluster.nodes:
        assert node.cpu_weight == 0.0
        assert node.busy_count == 0


def test_cpu_and_cores_per_node_are_mutually_exclusive():
    for cls in (ObjectFaaSCluster, FaaSCluster):
        with pytest.raises(ValueError, match="mutually exclusive"):
            cls(
                make_profiles(),
                n_nodes=1,
                node_memory_mb=1024.0,
                keepalive=NoKeepAlive(),
                cores_per_node=2,
                cpu=CpuModel(cores=2, policy=FifoCpu()),
            )


def test_cpu_contended_trace_event_matches_engines():
    """The ``invocation_contended`` lifecycle event fires identically on
    both engines (tracers force the scalar path on the array engine)."""
    ts, wids = make_load(2, n=120, horizon_s=4.0)

    def run(cls):
        tracer = PlatformTracer()
        cluster = cls(
            make_profiles(),
            n_nodes=2,
            node_memory_mb=2048.0,
            keepalive=NoKeepAlive(),
            cpu=CpuModel(cores=1, quantum_s=0.02, policy=FifoCpu()),
            tracer=tracer,
        )
        for t, w in zip(ts.tolist(), wids):
            cluster.invoke(t, w)
        cluster.drain()
        return tracer.events

    ref, vec = run(ObjectFaaSCluster), run(FaaSCluster)
    assert vec == ref
    assert any(e.kind == "invocation_contended" for e in ref)
