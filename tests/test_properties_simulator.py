"""Property-based invariants of the cluster simulator (ISSUE 7).

Runs under Hypothesis when it is installed; a seeded-parametrization
fallback exercises the same invariants otherwise, so the suite never
silently loses this coverage.

Properties pinned:
- causality: every record satisfies arrival <= start <= end, and batched
  submission preserves it;
- memory safety: concurrently-held sandbox memory per node never exceeds
  the node's capacity;
- keep-alive eviction follows LRU order (least recently idled first);
- conservation: every submitted request is accounted for exactly once
  across completed-ok, crashed, and dropped;
- batched scheduler draws are stream-equal to sequential ones.
"""

import numpy as np
import pytest

from repro.platform import (
    CrashHook,
    FaaSCluster,
    FixedKeepAlive,
    NoKeepAlive,
    ObjectFaaSCluster,
    PlatformTracer,
    RandomScheduler,
    WorkloadProfile,
    iter_trace_slabs,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False

# Seeded fallback cases: (seed, n_requests, crash) -- always run, so the
# invariants stay pinned even where hypothesis is missing.
FALLBACK_CASES = [
    (0, 1, False), (1, 50, False), (2, 200, False), (3, 200, True),
    (4, 500, True), (5, 120, False), (6, 333, True),
]


def make_profiles(n=5):
    return {
        f"w{i}": WorkloadProfile(
            f"w{i}",
            runtime_ms=30.0 + 23.0 * i,
            memory_mb=128.0 * (1 + i % 3),
        )
        for i in range(n)
    }


def make_load(seed, n):
    rng = np.random.default_rng(seed)
    ts = np.sort(rng.uniform(0.0, max(n / 20.0, 1.0), n))
    wids = [f"w{int(i)}" for i in rng.integers(0, 5, n)]
    return ts, wids


def run_cluster(seed, n, crash, **overrides):
    ts, wids = make_load(seed, n)
    kwargs = dict(
        n_nodes=2,
        node_memory_mb=1024.0,
        keepalive=FixedKeepAlive(1.0),
        scheduler=RandomScheduler(seed=seed),
        queue_timeout_s=5.0,
    )
    if crash:
        kwargs["fault_hook"] = CrashHook(0.2, seed=seed)
    kwargs.update(overrides)
    cluster = FaaSCluster(make_profiles(), **kwargs)
    for t, w in zip(ts.tolist(), wids):
        cluster.invoke(t, w)
    records = cluster.drain()
    return cluster, records, n


# ---------------------------------------------------------------------------
# invariant checkers (shared by hypothesis and the seeded fallback)
# ---------------------------------------------------------------------------
def check_causality(seed, n, crash):
    cluster, records, _ = run_cluster(seed, n, crash)
    for r in records:
        assert r.arrival_s <= r.start_s <= r.end_s
    cols = cluster.record_columns()
    assert bool(np.all(cols.arrival_s <= cols.start_s))
    assert bool(np.all(cols.start_s <= cols.end_s))
    assert bool(np.all(cols.latency_ms >= 0.0))
    # the run's clock covers the last completion
    if records:
        assert cluster.clock_s >= max(r.end_s for r in records)


def check_memory_capacity(seed, n, crash):
    # NoKeepAlive: held memory is exactly the memory of in-flight
    # invocations, so the per-node sweep below is exhaustive.
    capacity = 640.0
    cluster, records, _ = run_cluster(
        seed, n, crash, keepalive=NoKeepAlive(), node_memory_mb=capacity
    )
    profiles = make_profiles()
    for node_id in {r.node for r in records}:
        mine = [r for r in records if r.node == node_id]
        # concurrent memory at each start instant (inclusive: the
        # admission check runs before the new sandbox is charged)
        for r in mine:
            held = sum(
                profiles[o.workload_id].memory_mb
                for o in mine
                if o.start_s <= r.start_s < o.end_s
                or (o is r)
            )
            assert held <= capacity + 1e-9


def check_conservation(seed, n, crash):
    cluster, records, n_submitted = run_cluster(
        seed, n, crash, node_memory_mb=512.0, queue_timeout_s=0.5
    )
    n_ok = sum(1 for r in records if r.ok)
    n_crashed = sum(1 for r in records if not r.ok)
    n_dropped = len(cluster.dropped)
    assert n_ok + n_crashed + n_dropped == n_submitted
    if crash:
        assert all(not r.ok for r in records if not r.ok)
    else:
        assert n_crashed == 0
    # columnar view agrees with the object view
    cols = cluster.record_columns()
    assert int(cols.ok.sum()) == n_ok
    assert len(cols) == n_ok + n_crashed


def check_pick_many_stream_equality(seed, n, crash):
    del crash
    nodes = list(range(4))  # pick_many only reads len(nodes)
    batched = RandomScheduler(seed=seed)
    sequential = RandomScheduler(seed=seed)
    wids = [f"w{i}" for i in range(n)]
    many = batched.pick_many(nodes, wids)
    ones = [sequential.pick(nodes, w) for w in wids]
    assert many.tolist() == ones
    # and the generators are left in the same state: further draws agree
    assert batched.pick(nodes, "x") == sequential.pick(nodes, "x")


def check_warm_pool_bounded_by_ttl_window(seed, n, crash):
    """Warm-pool size never exceeds the completions of the trailing TTL
    window: every idle sandbox went idle within the last ``ttl`` seconds
    (anything older must have expired or been reused), so at any probe
    instant ``idle_count <= |{records: clock - ttl < end <= clock}|``."""
    del crash
    ttl = 0.75
    ts, wids = make_load(seed, n)
    cluster = FaaSCluster(
        make_profiles(),
        n_nodes=2,
        node_memory_mb=4096.0,
        keepalive=FixedKeepAlive(ttl),
        scheduler=RandomScheduler(seed=seed),
    )
    for t, w in zip(ts.tolist(), wids):
        cluster.invoke(t, w)
        now = cluster.clock_s
        idle = sum(node.idle_count for node in cluster.nodes)
        admitted = sum(
            1 for r in cluster.records if now - ttl < r.end_s <= now
        )
        assert idle <= admitted
    cluster.drain()
    assert sum(node.idle_count for node in cluster.nodes) == 0


def check_jitter_stream_equality(seed, n, crash):
    """Bulk submission consumes the jitter stream exactly like scalar
    submission: identical records *and* identical RNG end state."""
    del crash
    ts, wids = make_load(seed, n)
    kwargs = dict(
        n_nodes=2,
        node_memory_mb=16384.0,
        keepalive=FixedKeepAlive(2.0),
        service_time_cv=0.7,
    )
    scalar = FaaSCluster(
        make_profiles(), scheduler=RandomScheduler(seed=seed),
        seed=seed, **kwargs,
    )
    for t, w in zip(ts.tolist(), wids):
        scalar.invoke(t, w)
    bulk = FaaSCluster(
        make_profiles(), scheduler=RandomScheduler(seed=seed),
        seed=seed, **kwargs,
    )
    bulk.invoke_many(ts, wids)
    assert bulk._rng.bit_generator.state == scalar._rng.bit_generator.state
    assert bulk.drain() == scalar.drain()


def check_chunk_size_invariance(seed, n, crash):
    """Chunked submission is invariant to the chunk size: 1, 7, 4096,
    and all-in-one all produce byte-identical runs."""
    del crash
    ts, wids = make_load(seed, n)

    def run(chunk_rows):
        cluster = FaaSCluster(
            make_profiles(),
            n_nodes=2,
            node_memory_mb=16384.0,
            keepalive=FixedKeepAlive(1.0),
            scheduler=RandomScheduler(seed=seed),
            service_time_cv=0.4,
            seed=seed,
        )
        if chunk_rows is None:
            cluster.invoke_many(ts, wids)
        else:
            cluster.invoke_chunked(
                iter_trace_slabs(ts, wids, chunk_rows=chunk_rows)
            )
        return (
            cluster.drain(),
            cluster.clock_s,
            [
                (nd.used_memory_mb, nd.busy_count, nd.idle_count)
                for nd in cluster.nodes
            ],
        )

    baseline = run(None)
    for chunk_rows in (1, 7, 4096):
        assert run(chunk_rows) == baseline, f"chunk_rows={chunk_rows}"


CHECKS = [
    check_causality,
    check_memory_capacity,
    check_conservation,
    check_pick_many_stream_equality,
    check_warm_pool_bounded_by_ttl_window,
    check_jitter_stream_equality,
    check_chunk_size_invariance,
]


# --- always-on seeded parametrization --------------------------------------
@pytest.mark.parametrize("check", CHECKS, ids=lambda c: c.__name__)
@pytest.mark.parametrize("case", FALLBACK_CASES, ids=str)
def test_seeded(check, case):
    check(*case)


# --- hypothesis exploration (when available) --------------------------------
if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 300),
        crash=st.booleans(),
    )
    def test_hypothesis_causality(seed, n, crash):
        check_causality(seed, n, crash)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 200))
    def test_hypothesis_memory_capacity(seed, n):
        check_memory_capacity(seed, n, False)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 300),
        crash=st.booleans(),
    )
    def test_hypothesis_conservation(seed, n, crash):
        check_conservation(seed, n, crash)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(0, 200))
    def test_hypothesis_pick_many_stream_equality(seed, n):
        check_pick_many_stream_equality(seed, n, False)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 250))
    def test_hypothesis_warm_pool_bounded_by_ttl_window(seed, n):
        check_warm_pool_bounded_by_ttl_window(seed, n, False)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 250))
    def test_hypothesis_jitter_stream_equality(seed, n):
        check_jitter_stream_equality(seed, n, False)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 250))
    def test_hypothesis_chunk_size_invariance(seed, n):
        check_chunk_size_invariance(seed, n, False)


# ---------------------------------------------------------------------------
# LRU eviction order (deterministic scenario, both engines)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cls", [ObjectFaaSCluster, FaaSCluster])
def test_keepalive_eviction_follows_lru_order(cls):
    """Memory pressure evicts the *least recently idled* sandbox first.

    Three workloads idle their sandboxes at distinct, known times; a
    large request then forces evictions.  The trace must show them
    evicted oldest-idle first.
    """
    profiles = {
        "a": WorkloadProfile("a", runtime_ms=100.0, memory_mb=256.0),
        "b": WorkloadProfile("b", runtime_ms=100.0, memory_mb=256.0),
        "c": WorkloadProfile("c", runtime_ms=100.0, memory_mb=256.0),
        "big": WorkloadProfile("big", runtime_ms=100.0, memory_mb=768.0),
    }
    tracer = PlatformTracer()
    cluster = cls(
        profiles,
        n_nodes=1,
        node_memory_mb=1024.0,
        keepalive=FixedKeepAlive(100.0),
        tracer=tracer,
    )
    # idle order: a (earliest), then b, then c
    cluster.invoke(0.0, "a")
    cluster.invoke(1.0, "b")
    cluster.invoke(2.0, "c")
    # big (768) on a 1024 node with 3x256 idle: must evict a then b
    cluster.invoke(10.0, "big")
    cluster.drain()
    evicted = [e.workload_id for e in tracer.of_kind("sandbox_evicted")]
    assert evicted == ["a", "b"]


@pytest.mark.parametrize("cls", [ObjectFaaSCluster, FaaSCluster])
def test_lru_tie_breaks_on_first_scanned(cls):
    """Equal idle_since ties resolve to the first-scanned stack -- part
    of the byte-identity contract, pinned so refactors keep it."""
    profiles = {
        "a": WorkloadProfile("a", runtime_ms=100.0, memory_mb=256.0),
        "b": WorkloadProfile("b", runtime_ms=100.0, memory_mb=256.0),
        "big": WorkloadProfile("big", runtime_ms=100.0, memory_mb=1024.0),
    }
    tracer = PlatformTracer()
    cluster = cls(
        profiles,
        n_nodes=1,
        node_memory_mb=1024.0,
        keepalive=FixedKeepAlive(100.0),
        tracer=tracer,
    )
    # identical arrival => identical idle_since for both sandboxes
    cluster.invoke(0.0, "a")
    cluster.invoke(0.0, "b")
    cluster.invoke(5.0, "big")  # needs the whole node: evicts both
    cluster.drain()
    evicted = [e.workload_id for e in tracer.of_kind("sandbox_evicted")]
    assert evicted == ["a", "b"]  # insertion order of the idle dict
