"""Unit + property tests for repro.stats.ecdf."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import EmpiricalCDF


class TestConstruction:
    def test_from_samples_basic(self):
        cdf = EmpiricalCDF.from_samples([3.0, 1.0, 2.0])
        assert cdf.n_points == 3
        np.testing.assert_allclose(cdf.support, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(cdf.probs, [1 / 3, 2 / 3, 1.0])

    def test_duplicates_merge(self):
        cdf = EmpiricalCDF.from_samples([1.0, 1.0, 2.0])
        assert cdf.n_points == 2
        np.testing.assert_allclose(cdf.probs, [2 / 3, 1.0])

    def test_weighted(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0], weights=[3.0, 1.0])
        np.testing.assert_allclose(cdf.probs, [0.75, 1.0])

    def test_zero_weight_total_rejected(self):
        with pytest.raises(ValueError, match="total weight"):
            EmpiricalCDF.from_samples([1.0, 2.0], weights=[0.0, 0.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EmpiricalCDF.from_samples([1.0], weights=[-1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError, match="match"):
            EmpiricalCDF.from_samples([1.0, 2.0], weights=[1.0])

    def test_raw_ctor_validates_monotone_support(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            EmpiricalCDF(support=np.array([2.0, 1.0]), probs=np.array([0.5, 1.0]))

    def test_raw_ctor_validates_final_prob(self):
        with pytest.raises(ValueError, match="end at 1.0"):
            EmpiricalCDF(support=np.array([1.0, 2.0]), probs=np.array([0.2, 0.9]))


class TestEvaluation:
    def test_step_semantics(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == pytest.approx(0.25)  # right-continuous
        assert cdf(2.5) == pytest.approx(0.5)
        assert cdf(4.0) == 1.0
        assert cdf(100.0) == 1.0

    def test_vectorised_eval(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0])
        out = cdf(np.array([0.0, 1.0, 1.5, 2.0, 3.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 0.5, 1.0, 1.0])

    def test_sf_complements(self):
        cdf = EmpiricalCDF.from_samples([1.0, 5.0, 9.0])
        xs = np.linspace(0, 10, 23)
        np.testing.assert_allclose(cdf.sf(xs), 1.0 - cdf(xs))

    def test_quantile_endpoints(self):
        cdf = EmpiricalCDF.from_samples([2.0, 4.0, 8.0])
        assert cdf.quantile(0.0) == 2.0
        assert cdf.quantile(1.0) == 8.0

    def test_quantile_interpolates(self):
        cdf = EmpiricalCDF.from_samples([0.0, 10.0])
        # knots: (0, 0), (0.5, 0), (1.0, 10) -> q=0.75 interpolates halfway
        assert cdf.quantile(0.75) == pytest.approx(5.0)

    def test_quantile_rejects_out_of_range(self):
        cdf = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)
        with pytest.raises(ValueError):
            cdf.quantile(-0.1)

    def test_mean_weighted(self):
        cdf = EmpiricalCDF.from_samples([1.0, 3.0], weights=[1.0, 3.0])
        assert cdf.mean() == pytest.approx(2.5)

    def test_series_log_space(self):
        cdf = EmpiricalCDF.from_samples([1.0, 10.0, 100.0])
        xs, fs = cdf.series(n=32)
        assert xs.shape == fs.shape == (32,)
        assert xs[0] == pytest.approx(1.0)
        assert xs[-1] == pytest.approx(100.0)
        assert np.all(np.diff(fs) >= 0)

    def test_series_linear_when_nonpositive_support(self):
        cdf = EmpiricalCDF.from_samples([-1.0, 0.0, 1.0])
        xs, fs = cdf.series(n=16)
        assert xs[0] == -1.0 and xs[-1] == 1.0


@st.composite
def samples_and_weights(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    vals = draw(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.001, max_value=1e3, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return vals, weights


class TestProperties:
    @given(samples_and_weights())
    @settings(max_examples=80)
    def test_cdf_monotone_and_bounded(self, sw):
        vals, weights = sw
        cdf = EmpiricalCDF.from_samples(vals, weights)
        xs = np.linspace(min(vals) - 1, max(vals) + 1, 101)
        fs = cdf(xs)
        assert np.all((fs >= 0) & (fs <= 1))
        assert np.all(np.diff(fs) >= -1e-12)
        assert fs[-1] == pytest.approx(1.0)

    @given(samples_and_weights())
    @settings(max_examples=80)
    def test_quantile_is_pseudo_inverse(self, sw):
        vals, weights = sw
        cdf = EmpiricalCDF.from_samples(vals, weights)
        qs = np.linspace(0, 1, 21)
        xq = cdf.quantile(qs)
        # interpolated inverse stays inside the sample range and is monotone
        assert np.all(xq >= cdf.support[0] - 1e-9)
        assert np.all(xq <= cdf.support[-1] + 1e-9)
        assert np.all(np.diff(xq) >= -1e-9)

    @given(samples_and_weights())
    @settings(max_examples=50)
    def test_mean_matches_numpy_average(self, sw):
        vals, weights = sw
        cdf = EmpiricalCDF.from_samples(vals, weights)
        expected = np.average(vals, weights=weights)
        assert cdf.mean() == pytest.approx(expected, rel=1e-9, abs=1e-6)
