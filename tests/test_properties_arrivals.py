"""Property-based tests for the sub-minute arrival model.

Runs under Hypothesis when it is installed; a seeded-parametrization
fallback exercises the same invariants otherwise, so the suite never
silently loses this coverage.

Properties pinned (per ISSUE 2):
- per-minute counts are conserved (deterministic modes verbatim; offsets
  length always matches the realised totals),
- timestamps are sorted within each cell and fall inside the minute,
- equidistant spacing is exactly 60/k within every cell.
"""

import numpy as np
import numpy.testing as npt
import pytest

from repro.loadgen.arrivals import ARRIVAL_MODES, cell_counts, minute_offsets

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False

# Seeded fallback cases: (seed, n_cells, max_count) -- always run, so the
# invariants stay pinned even where hypothesis is missing.
FALLBACK_CASES = [
    (0, 1, 1), (1, 1, 40), (2, 7, 0), (3, 13, 9),
    (4, 50, 3), (5, 128, 25), (6, 3, 1000),
]


def _random_counts(seed, n_cells, max_count):
    rng = np.random.default_rng(seed)
    return rng.integers(0, max_count + 1, size=n_cells)


def check_counts_conserved(counts, mode, seed):
    rng = np.random.default_rng(seed)
    realised = cell_counts(counts, mode, rng)
    assert realised.shape == np.asarray(counts).shape
    assert np.all(realised >= 0)
    if mode in ("uniform", "equidistant"):
        # deterministic modes emit the per-minute counts verbatim
        npt.assert_array_equal(realised, counts)
    offsets = minute_offsets(realised.ravel(), mode, rng)
    # every realised request gets exactly one timestamp
    assert offsets.size == int(realised.sum())


def check_offsets_within_minute_and_sorted(counts, mode, seed):
    rng = np.random.default_rng(seed)
    realised = cell_counts(counts, mode, rng).ravel()
    offsets = minute_offsets(realised, mode, rng)
    assert np.all(offsets >= 0.0) and np.all(offsets < 60.0)
    # ascending within each cell (cell-major concatenation)
    lo = 0
    for k in realised:
        cell = offsets[lo:lo + k]
        assert np.all(np.diff(cell) >= 0)
        lo += k
    assert lo == offsets.size


def check_equidistant_spacing_exact(counts, seed):
    rng = np.random.default_rng(seed)
    realised = cell_counts(counts, "equidistant", rng).ravel()
    offsets = minute_offsets(realised, "equidistant", rng)
    lo = 0
    for k in realised:
        cell = offsets[lo:lo + k]
        if k > 1:
            npt.assert_allclose(np.diff(cell), 60.0 / k, rtol=1e-12)
        lo += k


# --- always-on seeded parametrization -------------------------------------

@pytest.mark.parametrize("mode", ARRIVAL_MODES)
@pytest.mark.parametrize("seed,n_cells,max_count", FALLBACK_CASES)
def test_counts_conserved(mode, seed, n_cells, max_count):
    check_counts_conserved(_random_counts(seed, n_cells, max_count),
                           mode, seed)


@pytest.mark.parametrize("mode", ARRIVAL_MODES)
@pytest.mark.parametrize("seed,n_cells,max_count", FALLBACK_CASES)
def test_offsets_within_minute_and_sorted(mode, seed, n_cells, max_count):
    check_offsets_within_minute_and_sorted(
        _random_counts(seed, n_cells, max_count), mode, seed
    )


@pytest.mark.parametrize("seed,n_cells,max_count", FALLBACK_CASES)
def test_equidistant_spacing_exact(seed, n_cells, max_count):
    check_equidistant_spacing_exact(
        _random_counts(seed, n_cells, max_count), seed
    )


def test_empty_and_invalid_inputs():
    rng = np.random.default_rng(0)
    assert minute_offsets(np.array([], dtype=np.int64), "poisson", rng).size == 0
    assert minute_offsets(np.zeros(5, dtype=np.int64), "uniform", rng).size == 0
    with pytest.raises(ValueError, match="non-negative"):
        cell_counts(np.array([-1]), "poisson", rng)
    with pytest.raises(ValueError, match="non-negative"):
        minute_offsets(np.array([-1]), "uniform", rng)
    with pytest.raises(ValueError, match="unknown arrival mode"):
        cell_counts(np.array([1]), "fractal", rng)
    with pytest.raises(ValueError, match="unknown arrival mode"):
        minute_offsets(np.array([1]), "fractal", rng)


# --- hypothesis (when available) ------------------------------------------

if HAVE_HYPOTHESIS:
    counts_strategy = st.lists(
        st.integers(min_value=0, max_value=200), min_size=1, max_size=64
    ).map(lambda xs: np.array(xs, dtype=np.int64))
    seeds = st.integers(min_value=0, max_value=2**32 - 1)
    modes = st.sampled_from(ARRIVAL_MODES)

    @settings(max_examples=50, deadline=None)
    @given(counts=counts_strategy, mode=modes, seed=seeds)
    def test_hypothesis_counts_conserved(counts, mode, seed):
        check_counts_conserved(counts, mode, seed)

    @settings(max_examples=50, deadline=None)
    @given(counts=counts_strategy, mode=modes, seed=seeds)
    def test_hypothesis_offsets_within_minute_and_sorted(counts, mode, seed):
        check_offsets_within_minute_and_sorted(counts, mode, seed)

    @settings(max_examples=50, deadline=None)
    @given(counts=counts_strategy, seed=seeds)
    def test_hypothesis_equidistant_spacing_exact(counts, seed):
        check_equidistant_spacing_exact(counts, seed)
