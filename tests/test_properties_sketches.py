"""Property-based tests for the mergeable streaming sketches.

Runs under Hypothesis when it is installed; a seeded-parametrization
fallback exercises the same invariants otherwise, so the suite never
silently loses this coverage.

Properties pinned (per ISSUE 5):
- KLL rank error stays within the sketch's self-reported bound (and the
  sketch is *exact* while no compaction has occurred),
- merge is commutative/associative up to the combined error bounds, with
  exact totals (``n``) preserved byte-for-byte,
- estimates are invariant to how the input stream is chunked,
- SpaceSaving keeps every key whose true count exceeds ``n/capacity``
  (top-k superset guarantee) and brackets true counts from both sides.
"""

import numpy as np
import numpy.testing as npt
import pytest

from repro.stats.distance import ks_distance
from repro.stats.ecdf import EmpiricalCDF
from repro.stats.sketches import (
    KLLSketch,
    RateMatrixAccumulator,
    SpaceSavingCounter,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False

# Seeded fallback cases: (seed, n_values) -- always run, so the
# invariants stay pinned even where hypothesis is missing.
FALLBACK_CASES = [
    (0, 1), (1, 17), (2, 64), (3, 257), (4, 1000), (5, 4096), (6, 9973),
]

SMALL_K = 64  # small capacity so moderate streams force compaction


def _random_values(seed, n):
    rng = np.random.default_rng(seed)
    # lognormal-ish positive durations with ties sprinkled in
    vals = rng.lognormal(mean=4.0, sigma=1.5, size=n)
    ties = rng.integers(0, max(n // 4, 1), size=n)
    vals[ties % 3 == 0] = np.round(vals[ties % 3 == 0])
    return vals


def _exact_ecdf(values):
    return EmpiricalCDF.from_samples(np.asarray(values, dtype=np.float64))


def check_rank_error_within_bound(values, k=SMALL_K):
    sketch = KLLSketch(k=k)
    sketch.insert_many(np.asarray(values, dtype=np.float64))
    assert sketch.n == len(values)
    bound = sketch.rank_error_bound
    assert 0.0 <= bound < 1.0
    ks = ks_distance(_exact_ecdf(values), sketch.to_ecdf())
    assert ks <= bound + 1e-9
    return sketch


def check_exact_below_capacity(values, k):
    """No compaction can occur while n <= k: the sketch IS the data."""
    assert len(values) <= k
    sketch = KLLSketch(k=k)
    sketch.insert_many(np.asarray(values, dtype=np.float64))
    assert sketch.rank_error_bound == 0.0
    exact = _exact_ecdf(values)
    got = sketch.to_ecdf()
    npt.assert_array_equal(got.support, exact.support)
    npt.assert_allclose(got.probs, exact.probs, rtol=0, atol=1e-15)


def check_merge_commutative_associative(values, split_a, split_b):
    chunks = [values[:split_a], values[split_a:split_b], values[split_b:]]
    sketches = []
    for chunk in chunks:
        s = KLLSketch(k=SMALL_K)
        s.insert_many(np.asarray(chunk, dtype=np.float64))
        sketches.append(s)
    a, b, c = sketches

    def fused(x, y, z):
        m = KLLSketch(k=SMALL_K)
        for part in (x, y, z):
            m.merge(part)
        return m

    left = fused(a, b, c)
    right = fused(c, b, a)
    # exact totals are order-independent byte-for-byte
    assert left.n == right.n == len(values)
    # every ordering individually honours its own error bound
    exact = _exact_ecdf(values)
    for m in (left, right):
        assert ks_distance(exact, m.to_ecdf()) <= m.rank_error_bound + 1e-9
    # and the two orderings agree within their combined bounds
    cross = ks_distance(left.to_ecdf(), right.to_ecdf())
    assert cross <= left.rank_error_bound + right.rank_error_bound + 1e-9


def check_chunk_invariance(values, chunk_sizes):
    exact = _exact_ecdf(values)
    whole = KLLSketch(k=SMALL_K)
    whole.insert_many(np.asarray(values, dtype=np.float64))
    for chunk_rows in chunk_sizes:
        merged = KLLSketch(k=SMALL_K)
        for lo in range(0, len(values), chunk_rows):
            part = KLLSketch(k=SMALL_K)
            part.insert_many(
                np.asarray(values[lo:lo + chunk_rows], dtype=np.float64))
            merged.merge(part)
        assert merged.n == whole.n
        assert (ks_distance(exact, merged.to_ecdf())
                <= merged.rank_error_bound + 1e-9)


def check_weighted_matches_repeated(values, weights):
    weighted = KLLSketch(k=SMALL_K)
    weighted.insert_many(np.asarray(values, dtype=np.float64),
                         np.asarray(weights, dtype=np.int64))
    assert weighted.n == int(np.sum(weights))
    exact = EmpiricalCDF.from_samples(
        np.asarray(values, dtype=np.float64),
        weights=np.asarray(weights, dtype=np.float64),
    )
    ks = ks_distance(exact, weighted.to_ecdf())
    assert ks <= weighted.rank_error_bound + 1e-9


def _random_keys(seed, n, n_distinct):
    rng = np.random.default_rng(seed)
    # Zipf-flavoured popularity so there are genuine heavy hitters
    ranks = rng.zipf(1.3, size=n) % max(n_distinct, 1)
    return [f"fn-{r}" for r in ranks]


def check_spacesaving_guarantees(keys, capacity):
    from collections import Counter

    truth = Counter(keys)
    counter = SpaceSavingCounter(capacity=capacity)
    for key in keys:
        counter.add(key)
    n = len(keys)
    assert counter.n == n
    assert counter.error_bound == pytest.approx(n / capacity)
    tracked = {key for key, _count in counter.top(capacity)}
    for key, true_count in truth.items():
        if true_count > n / capacity:
            # superset guarantee: every heavy hitter is tracked
            assert key in tracked, (key, true_count, n / capacity)
        if key in tracked:
            est = counter.estimate(key)
            assert true_count <= est <= true_count + counter.error_bound
            assert counter.guaranteed_count(key) <= true_count


def check_spacesaving_merge(keys, capacity, split):
    from collections import Counter

    merged = SpaceSavingCounter(capacity=capacity)
    right = SpaceSavingCounter(capacity=capacity)
    for key in keys[:split]:
        merged.add(key)
    for key in keys[split:]:
        right.add(key)
    merged.merge(right)
    n = len(keys)
    assert merged.n == n
    truth = Counter(keys)
    tracked = {key for key, _count in merged.top(capacity)}
    for key, true_count in truth.items():
        if true_count > merged.error_bound:
            assert key in tracked
        if key in tracked:
            assert merged.estimate(key) >= true_count


# --- always-on seeded parametrization -------------------------------------

@pytest.mark.parametrize("seed,n", FALLBACK_CASES)
def test_rank_error_within_bound(seed, n):
    check_rank_error_within_bound(_random_values(seed, n))


@pytest.mark.parametrize("seed,n", [(0, 1), (1, 10), (2, 64)])
def test_exact_below_capacity(seed, n):
    check_exact_below_capacity(_random_values(seed, n), k=64)


@pytest.mark.parametrize("seed,n", [(3, 300), (4, 2000), (5, 5001)])
def test_merge_commutative_associative(seed, n):
    values = _random_values(seed, n)
    check_merge_commutative_associative(values, n // 3, 2 * n // 3)


@pytest.mark.parametrize("seed,n", [(6, 1500), (7, 4096)])
def test_chunk_invariance(seed, n):
    check_chunk_invariance(_random_values(seed, n), [7, 100, 1024])


@pytest.mark.parametrize("seed,n", [(8, 50), (9, 700)])
def test_weighted_matches_repeated(seed, n):
    rng = np.random.default_rng(seed + 1000)
    weights = rng.integers(1, 50, size=n)
    check_weighted_matches_repeated(_random_values(seed, n), weights)


def test_default_k_meets_acceptance_epsilon():
    """With the default capacity, 50k inserts stay within KS <= 0.01."""
    values = _random_values(42, 50_000)
    sketch = KLLSketch()  # default k
    sketch.insert_many(values)
    assert sketch.rank_error_bound <= 0.01
    assert ks_distance(_exact_ecdf(values), sketch.to_ecdf()) <= 0.01


def test_kll_space_is_bounded():
    sketch = KLLSketch(k=SMALL_K)
    sketch.insert_many(_random_values(0, 20_000))
    # capacity-k compactors over log2(n/k) levels: well under n
    assert sketch.size <= SMALL_K * 32


@pytest.mark.parametrize("seed,n,capacity", [
    (0, 100, 16), (1, 5000, 64), (2, 20000, 256),
])
def test_spacesaving_guarantees(seed, n, capacity):
    check_spacesaving_guarantees(
        _random_keys(seed, n, n_distinct=n), capacity)


@pytest.mark.parametrize("seed,n,capacity", [(3, 3000, 64), (4, 9000, 128)])
def test_spacesaving_merge(seed, n, capacity):
    check_spacesaving_merge(
        _random_keys(seed, n, n_distinct=n), capacity, n // 2)


def test_spacesaving_exact_below_capacity():
    counter = SpaceSavingCounter(capacity=8)
    counter.add_many(["a", "b", "a", "c", "a", "b"], [1, 1, 1, 1, 1, 1])
    assert counter.estimate("a") == 3
    assert counter.guaranteed_count("a") == 3
    assert counter.min_estimate == 0
    assert counter.top(2) == [("a", 3), ("b", 2)]


def test_rate_matrix_chunk_invariance():
    rng = np.random.default_rng(5)
    n, minutes = 400, 60
    per_minute = rng.integers(0, 30, size=(n, minutes)).astype(np.int64)
    durations = rng.lognormal(4.0, 1.0, size=n)
    whole = RateMatrixAccumulator(minutes)
    whole.observe_block(durations, per_minute)
    for chunk in (11, 128):
        acc = RateMatrixAccumulator(minutes)
        for lo in range(0, n, chunk):
            part = RateMatrixAccumulator(minutes)
            part.observe_block(durations[lo:lo + chunk],
                               per_minute[lo:lo + chunk])
            acc.merge(part)
        a, b = whole.finalize(), acc.finalize()
        npt.assert_array_equal(a[0], b[0])
        assert a[1].tobytes() == b[1].tobytes()
        assert a[2].tobytes() == b[2].tobytes()


def test_kll_point_queries_match_exact():
    values = _random_values(11, 60)  # below capacity: sketch is exact
    sketch = KLLSketch(k=64)
    sketch.insert_many(values)
    exact = _exact_ecdf(values)
    qs = np.array([np.min(values) - 1.0, np.median(values),
                   np.max(values), np.max(values) + 1.0])
    npt.assert_allclose(sketch.cdf(qs), exact(qs), atol=1e-12)
    probs = np.array([0.0, 0.25, 0.5, 0.9, 1.0])
    npt.assert_allclose(sketch.quantile(probs), exact.quantile(probs))
    assert float(sketch.cdf(np.min(values) - 1.0)) == 0.0


def test_kll_empty_sketch_behaviour():
    sketch = KLLSketch()
    assert sketch.n == 0
    assert sketch.rank_error_bound == 0.0
    with pytest.raises(ValueError, match="empty sketch"):
        sketch.to_ecdf()
    with pytest.raises(ValueError, match="empty sketch"):
        sketch.cdf(1.0)
    # insert_many with no values is a no-op
    sketch.insert_many(np.array([]))
    assert sketch.n == 0


def test_kll_insert_many_validation():
    sketch = KLLSketch()
    with pytest.raises(ValueError, match="weights must match"):
        sketch.insert_many(np.array([1.0, 2.0]), np.array([1]))
    with pytest.raises(ValueError, match="must be integers"):
        sketch.insert_many(np.array([1.0]), np.array([1.5]))


def test_spacesaving_edge_cases():
    counter = SpaceSavingCounter(capacity=4)
    counter.add("a", 0)  # zero-count observation is a no-op
    assert counter.n == 0
    with pytest.raises(ValueError, match="non-negative"):
        counter.add("a", -1)
    with pytest.raises(ValueError, match="counts must match"):
        counter.add_many(["a", "b"], [1])
    with pytest.raises(ValueError, match="different capacities"):
        counter.merge(SpaceSavingCounter(capacity=8))
    assert counter.estimate("missing") == 0
    assert counter.error("missing") == 0


def test_rate_matrix_validation():
    with pytest.raises(ValueError, match="n_minutes"):
        RateMatrixAccumulator(0)
    with pytest.raises(ValueError, match="quantize_ms"):
        RateMatrixAccumulator(60, quantize_ms=0.0)
    acc = RateMatrixAccumulator(4)
    with pytest.raises(ValueError, match="block must be"):
        acc.observe_block(np.array([1.0]), np.ones((1, 5), dtype=np.int64))
    with pytest.raises(ValueError, match="align"):
        acc.observe_block(np.array([1.0, 2.0]),
                          np.ones((1, 4), dtype=np.int64))
    with pytest.raises(ValueError, match="integer"):
        acc.observe_block(np.array([1.0]), np.ones((1, 4)))
    with pytest.raises(ValueError, match="no invoked functions"):
        acc.finalize()
    # all-zero rows are skipped, mirroring nonzero_functions()
    acc.observe_block(np.array([5.0, 6.0]),
                      np.array([[1, 0, 0, 2], [0, 0, 0, 0]],
                               dtype=np.int64))
    keys, matrix, counts, durations, sizes = acc.finalize()
    assert keys.tolist() == [5]
    assert counts.tolist() == [3]
    assert sizes.tolist() == [1]
    npt.assert_allclose(durations, [5.0])
    assert acc.n_groups == 1
    assert acc.total_invocations == 3
    # an all-zero block is a no-op, and repeated keys accumulate in place
    acc.observe_block(np.array([7.0]),
                      np.zeros((1, 4), dtype=np.int64))
    assert acc.n_groups == 1
    acc.observe_block(np.array([5.0, 5.4]),
                      np.array([[0, 1, 0, 0], [2, 0, 0, 0]],
                               dtype=np.int64))
    assert acc.n_groups == 1  # both quantise to key 5
    assert acc.total_invocations == 6


def test_validation_errors():
    with pytest.raises(ValueError, match="k must be"):
        KLLSketch(k=3)
    with pytest.raises(ValueError, match="capacity"):
        SpaceSavingCounter(capacity=0)
    with pytest.raises(ValueError, match="weight"):
        KLLSketch().insert_weighted(1.0, -1)
    a, b = KLLSketch(k=64), KLLSketch(k=128)
    with pytest.raises(ValueError, match="different k"):
        a.merge(b)
    with pytest.raises(ValueError, match="different shapes"):
        RateMatrixAccumulator(60).merge(RateMatrixAccumulator(61))
    # zero-weight insertion is an explicit no-op, not an error
    s = KLLSketch()
    s.insert_weighted(1.0, 0)
    assert s.n == 0


# --- hypothesis (when available) ------------------------------------------

if HAVE_HYPOTHESIS:
    finite_values = st.lists(
        st.floats(min_value=1e-3, max_value=1e9, allow_nan=False,
                  allow_infinity=False),
        min_size=1, max_size=500,
    ).map(lambda xs: np.array(xs, dtype=np.float64))
    seeds = st.integers(min_value=0, max_value=2**32 - 1)

    @settings(max_examples=40, deadline=None)
    @given(values=finite_values)
    def test_hypothesis_rank_error_within_bound(values):
        check_rank_error_within_bound(values, k=16)

    @settings(max_examples=40, deadline=None)
    @given(values=finite_values, data=st.data())
    def test_hypothesis_merge_commutative_associative(values, data):
        split_a = data.draw(st.integers(0, len(values)))
        split_b = data.draw(st.integers(split_a, len(values)))
        check_merge_commutative_associative(values, split_a, split_b)

    @settings(max_examples=30, deadline=None)
    @given(values=finite_values,
           chunk=st.integers(min_value=1, max_value=64))
    def test_hypothesis_chunk_invariance(values, chunk):
        check_chunk_invariance(values, [chunk])

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds,
           n=st.integers(min_value=1, max_value=2000),
           capacity=st.integers(min_value=4, max_value=128))
    def test_hypothesis_spacesaving_guarantees(seed, n, capacity):
        check_spacesaving_guarantees(
            _random_keys(seed, n, n_distinct=n), capacity)
