"""Tests for the workload pool and calibration harness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import EmpiricalCDF, ks_distance
from repro.workloads import (
    Workload,
    WorkloadPool,
    build_default_pool,
    calibrate_family,
    default_registry,
    measure_runtime_ms,
    vanilla_functionbench,
)


@pytest.fixture(scope="module")
def pool():
    return build_default_pool()


def make_pool(runtimes):
    return WorkloadPool([
        Workload(f"w:{i}", "fam", {"i": i}, rt, 32.0)
        for i, rt in enumerate(runtimes)
    ])


class TestPoolStructure:
    def test_paper_scale_cardinality(self, pool):
        # the paper reports ~2300 distinct Workloads from the 10 benchmarks
        assert 1900 <= len(pool) <= 2600

    def test_all_ten_families_present(self, pool):
        assert len(pool.families()) == 10

    def test_sorted_runtimes(self, pool):
        assert np.all(np.diff(pool.runtimes_ms) >= 0)

    def test_runtime_span_covers_trace_range(self, pool):
        r = pool.runtimes_ms
        assert r.min() < 5.0           # short-running end: a few ms
        assert r.max() > 30_000.0      # long tail: tens of seconds

    def test_pyaes_dominates_pool(self, pool):
        # paper section 4.4: pyaes dominates the pool, especially short end
        counts = pool.count_by_family()
        assert counts["pyaes"] == max(counts.values())
        short = [w.family for w in pool if w.runtime_ms < 50.0]
        from collections import Counter

        assert Counter(short).most_common(1)[0][0] == "pyaes"

    def test_cnn_serving_barely_augmented(self, pool):
        assert pool.count_by_family()["cnn_serving"] <= 6

    def test_lr_training_slowest_family_floor(self, pool):
        lr = [w.runtime_ms for w in pool if w.family == "lr_training"]
        assert min(lr) > 3_000.0  # quickest variation needs >3s (paper 4.4)

    def test_pool_tracks_azure_shape(self, pool):
        from repro.traces import synthetic_azure_trace

        az = synthetic_azure_trace(n_functions=4000, seed=11)
        ks = ks_distance(
            EmpiricalCDF.from_samples(pool.runtimes_ms),
            EmpiricalCDF.from_samples(az.durations_ms),
        )
        # pool is visibly left-shifted from Azure (as in the paper's Fig 6)
        # but far closer than the 10-point vanilla suite
        vanilla = vanilla_functionbench()
        ks_vanilla = ks_distance(
            EmpiricalCDF.from_samples(vanilla.runtimes_ms),
            EmpiricalCDF.from_samples(az.durations_ms),
        )
        assert ks < 0.45
        assert ks < ks_vanilla

    def test_memory_in_plausible_band(self, pool):
        mem = pool.memories_mb
        assert mem.min() >= 16.0
        assert np.median(mem) < 1024.0

    def test_getitem_and_unknown(self, pool):
        w = pool.workloads[0]
        assert pool[w.workload_id] is w
        with pytest.raises(KeyError, match="unknown workload"):
            pool["nope:0"]

    def test_index_of(self, pool):
        for k in (0, len(pool) // 2, len(pool) - 1):
            w = pool.workloads[k]
            assert pool.index_of(w.workload_id) == k

    def test_duplicate_ids_rejected(self):
        w = Workload("x:0", "fam", {}, 1.0, 32.0)
        with pytest.raises(ValueError, match="unique"):
            WorkloadPool([w, Workload("x:0", "fam", {}, 2.0, 32.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            WorkloadPool([])


class TestPoolQueries:
    def test_within_threshold_basic(self):
        p = make_pool([10.0, 50.0, 100.0, 110.0, 500.0])
        idx = p.within_threshold(100.0, 15.0)  # [85, 115]
        got = p.runtimes_ms[idx]
        np.testing.assert_allclose(got, [100.0, 110.0])

    def test_within_threshold_empty(self):
        p = make_pool([10.0, 1000.0])
        assert p.within_threshold(100.0, 5.0).size == 0

    def test_within_threshold_validation(self):
        p = make_pool([10.0])
        with pytest.raises(ValueError):
            p.within_threshold(-1.0, 10.0)
        with pytest.raises(ValueError):
            p.within_threshold(10.0, -1.0)

    def test_nearest_exact_and_between(self):
        p = make_pool([10.0, 100.0, 1000.0])
        assert p.runtimes_ms[p.nearest(100.0)] == 100.0
        assert p.runtimes_ms[p.nearest(40.0)] == 10.0
        assert p.runtimes_ms[p.nearest(70.0)] == 100.0

    def test_nearest_clamps_to_ends(self):
        p = make_pool([10.0, 100.0])
        assert p.nearest(0.001) == 0
        assert p.nearest(10**9) == 1

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50),
           st.floats(0.1, 1e6))
    @settings(max_examples=60)
    def test_nearest_is_argmin(self, runtimes, target):
        p = make_pool(runtimes)
        k = p.nearest(target)
        dists = np.abs(p.runtimes_ms - target)
        assert dists[k] == pytest.approx(dists.min())

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50),
           st.floats(0.1, 1e6), st.floats(0, 100))
    @settings(max_examples=60)
    def test_threshold_window_exact(self, runtimes, target, pct):
        p = make_pool(runtimes)
        idx = p.within_threshold(target, pct)
        lo, hi = target * (1 - pct / 100), target * (1 + pct / 100)
        inside = (p.runtimes_ms >= lo) & (p.runtimes_ms <= hi)
        np.testing.assert_array_equal(np.flatnonzero(inside), idx)


class TestVanilla:
    def test_ten_workloads(self):
        v = vanilla_functionbench()
        assert len(v) == 10
        assert len(v.families()) == 10

    def test_staircase_spans_three_orders(self):
        v = vanilla_functionbench()
        r = v.runtimes_ms
        assert r.max() / r.min() > 1000.0


class TestCalibration:
    def test_measure_returns_positive(self):
        reg = default_registry()
        ms = measure_runtime_ms(reg.get("matmul"), {"n": 32, "reps": 1},
                                repeats=2, warmups=1)
        assert ms > 0

    def test_measure_validates(self):
        reg = default_registry()
        fam = reg.get("matmul")
        with pytest.raises(ValueError):
            measure_runtime_ms(fam, {"n": 8, "reps": 1}, repeats=0)
        with pytest.raises(ValueError):
            measure_runtime_ms(fam, {"n": 8, "reps": 1}, warmups=-1)

    def test_calibrate_fits_linear_model(self):
        reg = default_registry()
        fam = reg.get("pyaes")
        res = calibrate_family(
            fam,
            [{"length": 256, "rounds": 1}, {"length": 2048, "rounds": 2},
             {"length": 8192, "rounds": 2}],
            repeats=2,
        )
        assert res.family == "pyaes"
        assert res.ms_per_unit > 0
        assert res.r_squared > 0.9  # pyaes is very linear in blocks*rounds

    def test_calibrate_apply(self):
        reg = default_registry()
        fam = reg.get("json_serdes")
        res = calibrate_family(
            fam,
            [{"n_records": 64, "fields": 4, "roundtrips": 1},
             {"n_records": 1024, "fields": 8, "roundtrips": 1}],
            repeats=1,
        )
        res.apply(fam)
        assert fam.ms_per_unit == res.ms_per_unit

    def test_calibrate_apply_wrong_family(self):
        reg = default_registry()
        res = calibrate_family(
            reg.get("pyaes"),
            [{"length": 64, "rounds": 1}, {"length": 512, "rounds": 1}],
            repeats=1,
        )
        with pytest.raises(ValueError, match="cannot apply"):
            res.apply(reg.get("matmul"))

    def test_calibrate_needs_spread(self):
        reg = default_registry()
        with pytest.raises(ValueError, match="at least two"):
            calibrate_family(reg.get("pyaes"), [{"length": 64, "rounds": 1}])
        with pytest.raises(ValueError, match="distinct work"):
            calibrate_family(
                reg.get("pyaes"),
                [{"length": 64, "rounds": 1}, {"length": 64, "rounds": 1}],
            )

    def test_estimates_track_measurements(self):
        """Shipped cost models predict real runtimes within ~4x either way.

        (Loose band: CI machines differ from the reference host; the pool
        only needs relative ordering and rough magnitude.)
        """
        reg = default_registry()
        checks = [
            ("pyaes", {"length": 2048, "rounds": 2}),
            ("matmul", {"n": 256, "reps": 1}),
            ("chameleon", {"rows": 2000, "cols": 8}),
            ("json_serdes", {"n_records": 2048, "fields": 8, "roundtrips": 1}),
        ]
        for name, params in checks:
            fam = reg.get(name)
            est = fam.estimated_runtime_ms(**params)
            meas = measure_runtime_ms(fam, params, repeats=2, warmups=1)
            assert est / 4 <= meas <= est * 4, (
                f"{name}: estimated {est:.2f}ms vs measured {meas:.2f}ms"
            )
