"""Tests for the vSwarm-style suite, pool IO, and pool composition."""

import numpy as np
import pytest

from repro.workloads import (
    build_default_pool,
    build_extended_pool,
    load_pool,
    merge_pools,
    save_pool,
)
from repro.workloads.vswarm import (
    VSWARM_FAMILIES,
    extended_registry,
)

SMALL_PARAMS = {
    "compression": {"size_bytes": 4096, "rounds": 1},
    "graph_analytics": {"n_nodes": 50, "iterations": 3},
    "sorting": {"n_records": 100, "n_keys": 2},
    "text_parsing": {"n_lines": 50, "passes": 1},
}


class TestVswarmFamilies:
    def test_registry_has_fourteen(self):
        reg = extended_registry()
        assert len(reg) == 14
        for cls in VSWARM_FAMILIES:
            assert cls().name in reg.names()

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_runs_and_deterministic(self, name):
        reg = extended_registry()
        fam = reg.get(name)
        a = fam.run(np.random.default_rng(3), **SMALL_PARAMS[name])
        b = fam.run(np.random.default_rng(3), **SMALL_PARAMS[name])
        assert a == b

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_rejects_nonpositive(self, name):
        reg = extended_registry()
        params = dict(SMALL_PARAMS[name])
        params[next(iter(params))] = 0
        with pytest.raises(ValueError):
            reg.get(name).prepare(np.random.default_rng(0), **params)

    def test_compression_roundtrip_is_lossless(self):
        reg = extended_registry()
        fam = reg.get("compression")
        data, rounds = fam.prepare(np.random.default_rng(1),
                                   size_bytes=2048, rounds=1)
        import zlib

        assert zlib.decompress(zlib.compress(data)) == data

    def test_graph_bfs_reaches_connected_component(self):
        reg = extended_registry()
        fam = reg.get("graph_analytics")
        adjacency, source, iters = fam.prepare(
            np.random.default_rng(2), n_nodes=40, iterations=2)
        reachable, top = fam.execute((adjacency, source, iters))
        # barabasi-albert graphs are connected
        assert reachable == 40
        assert 0 <= top < 40

    def test_sorting_actually_sorts(self):
        reg = extended_registry()
        fam = reg.get("sorting")
        records, n_keys = fam.prepare(np.random.default_rng(3),
                                      n_records=200, n_keys=1)
        smallest = fam.execute((records, n_keys))
        assert smallest == min(r[0] for r in records)

    def test_text_parsing_counts_slow_lines(self):
        reg = extended_registry()
        fam = reg.get("text_parsing")
        payload = fam.prepare(np.random.default_rng(4), n_lines=500,
                              passes=1)
        slow = fam.execute(payload)
        # ms ~ U(1, 5000): roughly half the lines exceed 2500ms
        assert 150 < slow < 350


class TestExtendedPool:
    def test_larger_and_more_diverse(self):
        base = build_default_pool()
        ext = build_extended_pool()
        assert len(ext) > len(base)
        assert len(ext.families()) == 14

    def test_extended_pool_not_worse_vs_azure(self):
        from repro.stats import EmpiricalCDF, ks_distance
        from repro.traces import synthetic_azure_trace

        azure = synthetic_azure_trace(n_functions=2000, seed=55)
        target = EmpiricalCDF.from_samples(azure.durations_ms)
        ks_base = ks_distance(
            EmpiricalCDF.from_samples(build_default_pool().runtimes_ms),
            target)
        ks_ext = ks_distance(
            EmpiricalCDF.from_samples(build_extended_pool().runtimes_ms),
            target)
        assert ks_ext <= ks_base + 0.05

    def test_pipeline_works_with_extended_pool(self):
        from repro.core import shrink
        from repro.traces import synthetic_azure_trace

        azure = synthetic_azure_trace(n_functions=800, seed=56)
        spec = shrink(azure, build_extended_pool(), max_rps=5.0,
                      duration_minutes=10, seed=56)
        families = {e.family for e in spec.entries}
        # new suites actually get mapped
        assert families & {"compression", "graph_analytics", "sorting",
                           "text_parsing"}


class TestPoolIO:
    def test_roundtrip(self, tmp_path):
        pool = build_default_pool()
        path = tmp_path / "pool.json"
        save_pool(pool, path)
        loaded = load_pool(path)
        assert len(loaded) == len(pool)
        np.testing.assert_allclose(loaded.runtimes_ms, pool.runtimes_ms)
        w = pool.workloads[100]
        assert loaded[w.workload_id].params == w.params

    def test_version_guard(self, tmp_path):
        path = tmp_path / "pool.json"
        path.write_text('{"version": 99, "workloads": []}')
        with pytest.raises(ValueError, match="version"):
            load_pool(path)

    def test_empty_pool_file_rejected(self, tmp_path):
        path = tmp_path / "pool.json"
        path.write_text('{"version": 1, "workloads": []}')
        with pytest.raises(ValueError, match="no workloads"):
            load_pool(path)

    def test_merge_disjoint_suites(self):
        from repro.workloads import Workload, WorkloadPool

        a = WorkloadPool([Workload("a:0", "fa", {}, 1.0, 30.0)])
        b = WorkloadPool([Workload("b:0", "fb", {}, 2.0, 30.0)])
        merged = merge_pools(a, b)
        assert len(merged) == 2
        assert merged.families() == ["fa", "fb"]

    def test_merge_rejects_duplicates(self):
        pool = build_default_pool()
        with pytest.raises(ValueError, match="multiple pools"):
            merge_pools(pool, pool)

    def test_merge_needs_input(self):
        with pytest.raises(ValueError):
            merge_pools()
