"""Tests for request-rate and time scaling (paper section 3.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import scale_request_rate, thumbnail_scale, minute_range_scale
from repro.traces import synthetic_azure_trace


class TestRateScaling:
    def test_busiest_minute_hits_cap(self):
        rng = np.random.default_rng(0)
        per_minute = rng.integers(100, 1000, (50, 60)).astype(np.int64)
        scaled = scale_request_rate(per_minute, max_rps=2.0, rng=rng)
        agg = scaled.sum(axis=0)
        cap = 2.0 * 60
        assert agg.max() <= cap
        assert agg.max() >= cap * 0.9  # approximates the target

    def test_no_minute_exceeds_cap(self):
        rng = np.random.default_rng(1)
        per_minute = (rng.pareto(1.0, (200, 120)) * 50).astype(np.int64)
        scaled = scale_request_rate(per_minute, max_rps=5.0, rng=rng)
        assert scaled.sum(axis=0).max() <= 300

    def test_preserves_aggregate_trend(self):
        trace = synthetic_azure_trace(n_functions=2000, seed=2)
        rng = np.random.default_rng(2)
        scaled = scale_request_rate(trace.per_minute, max_rps=10.0, rng=rng)
        corr = np.corrcoef(
            scaled.sum(axis=0), trace.aggregate_per_minute
        )[0, 1]
        assert corr > 0.95

    def test_preserves_function_shares_in_expectation(self):
        rng = np.random.default_rng(3)
        per_minute = np.zeros((3, 10), dtype=np.int64)
        per_minute[0] = 8000
        per_minute[1] = 1500
        per_minute[2] = 500
        scaled = scale_request_rate(per_minute, max_rps=20.0, rng=rng)
        shares = scaled.sum(axis=1) / scaled.sum()
        np.testing.assert_allclose(shares, [0.8, 0.15, 0.05], atol=0.03)

    def test_column_sums_deterministic_given_seed(self):
        per_minute = np.full((5, 8), 100, dtype=np.int64)
        a = scale_request_rate(per_minute, 1.0, np.random.default_rng(9))
        b = scale_request_rate(per_minute, 1.0, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_rejects_upscaling(self):
        per_minute = np.full((2, 4), 1, dtype=np.int64)
        with pytest.raises(ValueError, match="not below"):
            scale_request_rate(per_minute, 1000.0, np.random.default_rng(0))

    def test_rejects_empty_trace(self):
        per_minute = np.zeros((2, 4), dtype=np.int64)
        with pytest.raises(ValueError, match="no invocations"):
            scale_request_rate(per_minute, 1.0, np.random.default_rng(0))

    def test_rejects_bad_inputs(self):
        good = np.full((2, 4), 100, dtype=np.int64)
        with pytest.raises(ValueError, match="max_rps"):
            scale_request_rate(good, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError, match="2-D"):
            scale_request_rate(good[0], 1.0, np.random.default_rng(0))

    @given(st.integers(1, 40), st.integers(2, 30), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_property_cap_never_exceeded(self, n_fns, n_minutes, seed):
        rng = np.random.default_rng(seed)
        per_minute = rng.integers(0, 500, (n_fns, n_minutes)).astype(np.int64)
        if per_minute.sum() == 0 or per_minute.sum(axis=0).max() <= 60:
            return
        scaled = scale_request_rate(per_minute, 1.0, rng)
        assert scaled.sum(axis=0).max() <= 60
        assert np.all(scaled >= 0)


class TestThumbnailScaling:
    def test_exact_division(self):
        per_minute = np.arange(24, dtype=np.int64).reshape(2, 12)
        out = thumbnail_scale(per_minute, 4)
        assert out.shape == (2, 4)
        np.testing.assert_array_equal(out.sum(axis=1), per_minute.sum(axis=1))
        np.testing.assert_array_equal(out[0], [0 + 1 + 2, 3 + 4 + 5,
                                               6 + 7 + 8, 9 + 10 + 11])

    def test_uneven_division_preserves_totals(self):
        rng = np.random.default_rng(0)
        per_minute = rng.integers(0, 50, (7, 1440)).astype(np.int64)
        out = thumbnail_scale(per_minute, 7)  # 1440 / 7 is not integral
        assert out.shape == (7, 7)
        np.testing.assert_array_equal(out.sum(axis=1), per_minute.sum(axis=1))

    def test_identity_when_duration_equals_length(self):
        per_minute = np.arange(12, dtype=np.int64).reshape(3, 4)
        np.testing.assert_array_equal(thumbnail_scale(per_minute, 4),
                                      per_minute)

    def test_preserves_diurnal_shape(self):
        trace = synthetic_azure_trace(n_functions=1500, seed=4)
        out = thumbnail_scale(trace.per_minute, 120)
        # group the original aggregate the same way and compare
        agg = out.sum(axis=0).astype(float)
        assert np.corrcoef(agg, thumbnail_scale(
            trace.aggregate_per_minute[None, :], 120)[0])[0, 1] > 0.999

    def test_validation(self):
        per_minute = np.zeros((2, 10), dtype=np.int64)
        with pytest.raises(ValueError):
            thumbnail_scale(per_minute, 0)
        with pytest.raises(ValueError):
            thumbnail_scale(per_minute, 11)
        with pytest.raises(ValueError, match="2-D"):
            thumbnail_scale(per_minute[0], 2)

    @given(st.integers(1, 60), st.integers(1, 400))
    @settings(max_examples=50, deadline=None)
    def test_property_row_sums_invariant(self, duration, n_minutes):
        if duration > n_minutes:
            return
        rng = np.random.default_rng(duration * 1000 + n_minutes)
        per_minute = rng.integers(0, 100, (5, n_minutes)).astype(np.int64)
        out = thumbnail_scale(per_minute, duration)
        assert out.shape == (5, duration)
        np.testing.assert_array_equal(out.sum(axis=1), per_minute.sum(axis=1))


class TestMinuteRange:
    def test_window(self):
        trace = synthetic_azure_trace(n_functions=100, seed=0)
        w = minute_range_scale(trace, 100, 30)
        assert w.n_minutes == 30
        np.testing.assert_array_equal(
            w.per_minute, trace.per_minute[:, 100:130]
        )

    def test_rejects_nonpositive_duration(self):
        trace = synthetic_azure_trace(n_functions=10, seed=0)
        with pytest.raises(ValueError):
            minute_range_scale(trace, 0, 0)
