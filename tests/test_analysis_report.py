"""Tests for the claim-check report generator and the DKW band."""

import pytest

from repro.analysis import (
    ClaimCheck,
    FigureContext,
    generate_report,
    run_claim_checks,
)
from repro.stats import dkw_band


class TestDkwBand:
    def test_shrinks_with_n(self):
        assert dkw_band(10_000) < dkw_band(100)

    def test_known_value(self):
        # sqrt(ln(40)/2n) at alpha=0.05, n=1000
        assert dkw_band(1000, alpha=0.05) == pytest.approx(0.0429, abs=1e-3)

    def test_ecdf_within_band_of_truth(self):
        import numpy as np

        from repro.stats import EmpiricalCDF

        rng = np.random.default_rng(0)
        n = 5000
        x = rng.exponential(1.0, n)
        ecdf = EmpiricalCDF.from_samples(x)
        grid = np.linspace(0.01, 8, 200)
        true_cdf = 1.0 - np.exp(-grid)
        sup = np.max(np.abs(ecdf(grid) - true_cdf))
        assert sup <= dkw_band(n, alpha=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            dkw_band(0)
        with pytest.raises(ValueError):
            dkw_band(10, alpha=0.0)
        with pytest.raises(ValueError):
            dkw_band(10, alpha=1.0)


class TestReport:
    @pytest.fixture(scope="class")
    def ctx(self):
        return FigureContext(azure_functions=2000, seed=29)

    def test_all_claims_pass_at_small_scale(self, ctx):
        checks = run_claim_checks(ctx)
        assert len(checks) == 15
        failing = [c for c in checks if not c.passed]
        assert not failing, f"failed claims: {failing}"

    def test_checks_carry_metric_values(self, ctx):
        for c in run_claim_checks(ctx):
            assert isinstance(c, ClaimCheck)
            assert c.metric
            assert c.value == c.value  # not NaN

    def test_markdown_structure(self, ctx):
        text = generate_report(ctx)
        assert text.startswith("# FaaSRail reproduction report")
        assert "| figure | claim |" in text
        assert "claims reproduced" in text
        assert "**FAIL**" not in text

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        rc = main(["report", "--functions", "1000", "--seed", "5",
                   "--out", str(out)])
        assert rc == 0
        assert out.read_text().startswith("# FaaSRail reproduction report")
