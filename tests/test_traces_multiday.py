"""Tests for multi-day trace windows and day selection."""

import numpy as np
import pytest

from repro.stats import coefficient_of_variation
from repro.traces import (
    pick_representative_day,
    summarize_days,
    synthetic_azure_week,
)


@pytest.fixture(scope="module")
def week():
    return synthetic_azure_week(n_functions=400, n_days=7, seed=3)


class TestWeekSynthesis:
    def test_shared_population(self, week):
        for day in week[1:]:
            np.testing.assert_array_equal(day.function_ids,
                                          week[0].function_ids)
            assert day.app_memory_mb == week[0].app_memory_mb

    def test_weekend_lighter_than_weekdays(self):
        week = synthetic_azure_week(n_functions=600, n_days=7, seed=9,
                                    start_weekday=0)
        totals = np.array([d.total_invocations for d in week], dtype=float)
        weekday_mean = totals[:5].mean()
        weekend_mean = totals[5:].mean()
        assert weekend_mean < weekday_mean

    def test_durations_wobble_but_stay_close(self, week):
        base = week[0].durations_ms
        other = week[3].durations_ms
        ratio = other / base
        assert 0.5 < np.median(ratio) < 2.0
        assert not np.allclose(base, other)

    def test_each_day_has_full_minute_resolution(self, week):
        for day in week:
            assert day.n_minutes == 1440

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_azure_week(n_days=0)
        with pytest.raises(ValueError):
            synthetic_azure_week(start_weekday=7)

    def test_deterministic(self):
        a = synthetic_azure_week(n_functions=50, n_days=2, seed=5)
        b = synthetic_azure_week(n_functions=50, n_days=2, seed=5)
        np.testing.assert_array_equal(a[1].per_minute, b[1].per_minute)


class TestSummaries:
    def test_summarize_days_matches_figure3_band(self, week):
        md = summarize_days(week)
        assert md.n_days == 7
        cv_dur = coefficient_of_variation(md.daily_avg_duration_ms)
        # the synthesis noise (sigma 0.15) keeps typical CVs well below 1
        assert (cv_dur < 1.0).mean() > 0.95

    def test_summarize_needs_two_days(self, week):
        with pytest.raises(ValueError):
            summarize_days(week[:1])


class TestDaySelection:
    def test_returns_valid_index(self, week):
        d = pick_representative_day(week)
        assert 0 <= d < len(week)

    def test_single_day_is_zero(self, week):
        assert pick_representative_day(week[:1]) == 0

    def test_prefers_typical_volume(self):
        week = synthetic_azure_week(n_functions=300, n_days=5, seed=13)
        # make day 2 wildly atypical
        week[2].per_minute = (week[2].per_minute * 50).astype(np.int32)
        assert pick_representative_day(week) != 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pick_representative_day([])
