"""Tests for second-resolution trace refinement."""

import numpy as np
import pytest

from repro.stats import index_of_dispersion
from repro.traces import SecondTrace, Trace, expand_to_seconds


def small_trace(n=5, minutes=8, seed=0):
    rng = np.random.default_rng(seed)
    return Trace(
        name="s",
        function_ids=np.array([f"f{i}" for i in range(n)]),
        app_ids=np.array(["a"] * n),
        durations_ms=rng.uniform(5, 500, n),
        per_minute=rng.integers(0, 200, (n, minutes)).astype(np.int32),
    )


class TestExpansion:
    def test_folds_back_exactly(self):
        trace = small_trace()
        st = expand_to_seconds(trace, seed=1)
        folded = st.per_second.reshape(
            trace.n_functions, trace.n_minutes, 60
        ).sum(axis=2)
        np.testing.assert_array_equal(folded, trace.per_minute)

    def test_shape(self):
        trace = small_trace(minutes=3)
        st = expand_to_seconds(trace, seed=0)
        assert st.n_seconds == 180
        assert st.per_second.shape == (5, 180)

    def test_small_gamma_is_burstier(self):
        trace = small_trace(n=1, minutes=30, seed=4)
        trace.per_minute[:] = 300  # plenty of requests per minute
        bursty = expand_to_seconds(trace, seed=2, burst_gamma_shape=0.2)
        smooth = expand_to_seconds(trace, seed=2, burst_gamma_shape=50.0)
        iod_b = index_of_dispersion(bursty.aggregate_per_second)
        iod_s = index_of_dispersion(smooth.aggregate_per_second)
        assert iod_b > 3 * iod_s

    def test_deterministic(self):
        trace = small_trace()
        a = expand_to_seconds(trace, seed=9)
        b = expand_to_seconds(trace, seed=9)
        np.testing.assert_array_equal(a.per_second, b.per_second)

    def test_size_guard(self):
        trace = small_trace(n=3, minutes=5)
        import repro.traces.seconds as mod

        old = mod._MAX_CELLS
        try:
            mod._MAX_CELLS = 10
            with pytest.raises(ValueError, match="cells"):
                expand_to_seconds(trace)
        finally:
            mod._MAX_CELLS = old

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError, match="positive"):
            expand_to_seconds(small_trace(), burst_gamma_shape=0.0)


class TestSecondTraceModel:
    def test_validation_shape(self):
        trace = small_trace(minutes=2)
        with pytest.raises(ValueError, match="per_second must be"):
            SecondTrace(trace, np.zeros((5, 60), dtype=np.int32))

    def test_validation_consistency(self):
        trace = small_trace(minutes=2)
        bad = np.zeros((5, 120), dtype=np.int32)  # doesn't fold back
        trace.per_minute[0, 0] = 7
        with pytest.raises(ValueError, match="fold back"):
            SecondTrace(trace, bad)

    def test_validation_dtype(self):
        trace = small_trace(minutes=1)
        good = expand_to_seconds(trace, seed=0).per_second
        with pytest.raises(ValueError, match="integer"):
            SecondTrace(trace, good.astype(np.float64))

    def test_busiest_second(self):
        trace = small_trace()
        st = expand_to_seconds(trace, seed=3)
        assert st.busiest_second_rate == st.aggregate_per_second.max()

    def test_window(self):
        trace = small_trace(minutes=10)
        st = expand_to_seconds(trace, seed=0)
        w = st.second_window(2, 3)
        assert w.shape == (5, 180)
        np.testing.assert_array_equal(w, st.per_second[:, 120:300])

    def test_window_validation(self):
        trace = small_trace(minutes=4)
        st = expand_to_seconds(trace, seed=0)
        with pytest.raises(ValueError):
            st.second_window(0, 0)
        with pytest.raises(ValueError):
            st.second_window(3, 2)


class TestSecondsLoadgen:
    def test_generate_from_second_matrix(self):
        from repro.core import SpecEntry
        from repro.loadgen import generate_from_second_matrix

        trace = small_trace(n=2, minutes=4, seed=7)
        st = expand_to_seconds(trace, seed=7)
        entries = [
            SpecEntry(f"f{i}", f"w:{i}", "pyaes", 5.0, 32.0)
            for i in range(2)
        ]
        req = generate_from_second_matrix(st.per_second, entries, seed=7)
        assert req.n_requests == trace.total_invocations
        # every request lands inside its recorded second
        per_sec = req.per_second_rate(st.n_seconds)
        np.testing.assert_array_equal(
            per_sec[: st.n_seconds], st.aggregate_per_second
        )

    def test_validation(self):
        from repro.core import SpecEntry
        from repro.loadgen import generate_from_second_matrix

        entries = [SpecEntry("f", "w", "fam", 1.0, 1.0)]
        with pytest.raises(ValueError, match="2-D"):
            generate_from_second_matrix(np.zeros(5), entries)
        with pytest.raises(ValueError, match="match entries"):
            generate_from_second_matrix(
                np.zeros((2, 5), dtype=np.int64), entries)
        with pytest.raises(ValueError, match="no requests"):
            generate_from_second_matrix(
                np.zeros((1, 5), dtype=np.int64), entries)
        with pytest.raises(ValueError, match="non-negative"):
            generate_from_second_matrix(
                np.full((1, 5), -1, dtype=np.int64), entries)

    def test_preserves_second_scale_burstiness(self):
        """The point of the feature: recorded bursts survive replay."""
        from repro.core import SpecEntry
        from repro.loadgen import generate_from_second_matrix
        from repro.traces import synthetic_huawei_trace

        hw = synthetic_huawei_trace(total_invocations=500_000, seed=3)
        window = hw.minute_range(0, 5)
        st = expand_to_seconds(window, seed=3, burst_gamma_shape=0.3)
        entries = [
            SpecEntry(str(f), f"w:{i}", "pyaes", 5.0, 32.0)
            for i, f in enumerate(window.function_ids)
        ]
        req = generate_from_second_matrix(st.per_second, entries, seed=3)
        iod_recorded = index_of_dispersion(st.aggregate_per_second)
        iod_replayed = index_of_dispersion(
            req.per_second_rate(st.n_seconds)[: st.n_seconds])
        assert iod_replayed == pytest.approx(iod_recorded, rel=0.01)
