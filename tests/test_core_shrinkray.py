"""End-to-end tests for the shrink ray and the Smirnov mode."""

import numpy as np
import pytest

from repro.core import ShrinkRay, shrink, smirnov_request_sample
from repro.stats.distance import ks_relative_band
from repro.traces import synthetic_azure_trace, synthetic_huawei_trace
from repro.workloads import build_default_pool


@pytest.fixture(scope="module")
def pool():
    return build_default_pool()


@pytest.fixture(scope="module")
def azure():
    return synthetic_azure_trace(n_functions=3000, seed=17)


class TestShrinkRay:
    def test_spec_shape_and_caps(self, azure, pool):
        spec = shrink(azure, pool, max_rps=10.0, duration_minutes=60, seed=0)
        assert spec.duration_minutes == 60
        assert spec.busiest_minute_rate <= 600
        assert spec.busiest_minute_rate >= 540  # approximates target
        assert spec.total_requests > 10_000

    def test_weighted_duration_cdf_tracks_trace(self, azure, pool):
        """The Figure-9 claim, quantitatively."""
        spec = shrink(azure, pool, max_rps=10.0, duration_minutes=60, seed=0)
        req = spec.requests_per_function.astype(float)
        counts = azure.invocations_per_function.astype(float)
        mask = counts > 0
        ks = ks_relative_band(
            spec.runtimes_ms[req > 0],
            azure.durations_ms[mask],
            x_weights=req[req > 0],
            y_weights=counts[mask],
        )
        assert ks < 0.08

    def test_load_trend_follows_trace(self, azure, pool):
        """The Figure-8 claim: thumbnails track the day's diurnal shape."""
        from repro.core import thumbnail_scale

        spec = shrink(azure, pool, max_rps=10.0, duration_minutes=120, seed=0)
        target = thumbnail_scale(azure.per_minute, 120).sum(axis=0)
        got = spec.aggregate_per_minute.astype(float)
        assert np.corrcoef(got, target)[0, 1] > 0.98

    def test_popularity_skew_preserved(self, azure, pool):
        """The Figure-10 claim: top functions dominate the request mix."""
        spec = shrink(azure, pool, max_rps=10.0, duration_minutes=60, seed=0)
        req = np.sort(spec.requests_per_function)[::-1].astype(float)
        top10pct = req[: max(1, req.size // 10)].sum() / req.sum()
        assert top10pct > 0.9

    def test_minute_range_mode(self, azure, pool):
        sr = ShrinkRay(time_mode="minute-range", range_start_minute=300)
        spec = sr.run(azure, pool, max_rps=10.0, duration_minutes=30, seed=0)
        assert spec.duration_minutes == 30
        assert spec.metadata["time_mode"] == "minute-range"

    def test_unknown_time_mode_rejected(self):
        with pytest.raises(ValueError, match="time mode"):
            ShrinkRay(time_mode="bogus")

    def test_rejects_nonpositive_duration(self, azure, pool):
        with pytest.raises(ValueError, match="duration"):
            shrink(azure, pool, max_rps=10.0, duration_minutes=0)

    def test_deterministic_given_seed(self, azure, pool):
        a = shrink(azure, pool, max_rps=5.0, duration_minutes=30, seed=3)
        b = shrink(azure, pool, max_rps=5.0, duration_minutes=30, seed=3)
        np.testing.assert_array_equal(a.per_minute, b.per_minute)
        assert [e.workload_id for e in a.entries] == [
            e.workload_id for e in b.entries
        ]

    def test_report_available_after_run(self, azure, pool):
        sr = ShrinkRay()
        with pytest.raises(RuntimeError):
            _ = sr.last_report
        sr.run(azure, pool, max_rps=5.0, duration_minutes=30, seed=0)
        rep = sr.last_report
        assert rep.mapping.n_functions == rep.aggregated_trace.n_functions

    def test_aggregate_off_ablation(self, azure, pool):
        sr = ShrinkRay(aggregate=False)
        spec = sr.run(azure, pool, max_rps=5.0, duration_minutes=30, seed=0)
        # without aggregation every invoked trace function maps separately
        assert spec.n_functions == azure.nonzero_functions().n_functions

    def test_metadata_provenance(self, azure, pool):
        spec = shrink(azure, pool, max_rps=5.0, duration_minutes=30, seed=0)
        md = spec.metadata
        assert md["source_functions"] == azure.n_functions
        assert md["time_mode"] == "thumbnails"
        assert "n_fallbacks" in md


class TestSmirnovMode:
    def test_sample_size(self, azure, pool):
        s = smirnov_request_sample(azure, pool, 20_000, seed=1)
        assert s.n_requests == 20_000
        assert s.workload_ids.shape == (20_000,)

    def test_distribution_tracks_azure(self, azure, pool):
        s = smirnov_request_sample(azure, pool, 40_000, seed=1)
        counts = azure.invocations_per_function.astype(float)
        mask = counts > 0
        ks = ks_relative_band(
            s.mapped_runtime_ms, azure.durations_ms[mask],
            y_weights=counts[mask],
        )
        assert ks < 0.08

    def test_step_inverse_reproduces_sparse_staircase(self, pool):
        """Figure 11b: on Huawei's 104-function staircase the step inverse
        nails the atoms; the paper's linear inverse smooths them."""
        hw = synthetic_huawei_trace(seed=7)
        w = hw.invocations_per_function.astype(float)
        s_step = smirnov_request_sample(hw, pool, 20_000, seed=2,
                                        inverse_method="step")
        ks_step = ks_relative_band(s_step.mapped_runtime_ms,
                                   hw.durations_ms, y_weights=w)
        s_lin = smirnov_request_sample(hw, pool, 20_000, seed=2,
                                       inverse_method="linear")
        ks_lin = ks_relative_band(s_lin.mapped_runtime_ms,
                                  hw.durations_ms, y_weights=w)
        assert ks_step < 0.08
        assert ks_step < ks_lin

    def test_family_shares_sum_to_one(self, azure, pool):
        s = smirnov_request_sample(azure, pool, 5_000, seed=3)
        assert sum(s.family_shares().values()) == pytest.approx(1.0)

    def test_huawei_severely_imbalanced(self, pool):
        """Figure 12b: short-running Huawei load concentrates on few
        families; the long-running benchmarks never appear."""
        hw = synthetic_huawei_trace(seed=7)
        s = smirnov_request_sample(hw, pool, 20_000, seed=2,
                                   inverse_method="step")
        shares = s.family_shares()
        assert "lr_training" not in shares          # >3s floor, never drawn
        assert max(shares.values()) > 0.25          # one family dominates

    def test_rejects_bad_args(self, azure, pool):
        with pytest.raises(ValueError):
            smirnov_request_sample(azure, pool, 0)
        with pytest.raises(ValueError):
            smirnov_request_sample(azure, pool, 10, quantize_rel=0.0)
        with pytest.raises(ValueError):
            smirnov_request_sample(azure, pool, 10, inverse_method="nope")

    def test_deterministic(self, azure, pool):
        a = smirnov_request_sample(azure, pool, 1_000, seed=5)
        b = smirnov_request_sample(azure, pool, 1_000, seed=5)
        np.testing.assert_array_equal(a.workload_ids, b.workload_ids)
