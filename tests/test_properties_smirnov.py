"""Property-based tests for the Smirnov (inverse-transform) machinery.

Runs under Hypothesis when it is installed; a seeded-parametrization
fallback exercises the same invariants otherwise, so the suite never
silently loses this coverage (same structure as
``test_properties_arrivals.py``).

Properties pinned (per ISSUE 3):
- the inverse CDF is monotone in ``q`` and bounded by the support, for
  both inverse methods;
- quantile-inverse consistency: the step inverse satisfies the
  generalised-inverse identities ``F(F^-1(q)) >= q`` and
  ``F^-1(F(x)) <= x``, and the linear inverse passes exactly through the
  empirical knots;
- sampling through the transform converges: the KS distance between
  generated samples and the target stays below the DKW sampling band
  across random weighted mixtures, and below ``1/n`` exactly for
  stratified draws pushed through the step inverse.
"""

import numpy as np
import numpy.testing as npt
import pytest

from repro.stats.distance import dkw_band, ks_distance
from repro.stats.ecdf import EmpiricalCDF
from repro.stats.sampling import smirnov_sample, stratified_uniform

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False

# Seeded fallback cases: (seed, n_support, weighted) -- always run, so
# the invariants stay pinned even where hypothesis is missing.
FALLBACK_CASES = [
    (0, 1, False), (1, 2, True), (2, 5, False), (3, 17, True),
    (4, 64, True), (5, 256, False), (6, 1000, True),
]

METHODS = ("linear", "step")


def _random_cdf(seed: int, n_support: int, weighted: bool) -> EmpiricalCDF:
    """A weighted ECDF over a lognormal-mixture support (duration-like)."""
    rng = np.random.default_rng(seed)
    # two lognormal components, like the repo's duration mixtures
    half = max(n_support // 2, 1)
    vals = np.concatenate([
        rng.lognormal(mean=np.log(80.0), sigma=1.2, size=half),
        rng.lognormal(mean=np.log(2000.0), sigma=0.8,
                      size=n_support - half),
    ])[:n_support]
    weights = rng.integers(1, 1000, size=n_support) if weighted else None
    return EmpiricalCDF.from_samples(vals, weights)


def check_quantile_monotone_and_bounded(cdf: EmpiricalCDF, seed: int):
    rng = np.random.default_rng(seed)
    q = np.sort(rng.random(257))
    for method in METHODS:
        x = np.atleast_1d(cdf.quantile(q, method=method))
        assert np.all(np.diff(x) >= 0), f"{method} inverse not monotone"
        assert np.all(x >= cdf.support[0] - 1e-12)
        assert np.all(x <= cdf.support[-1] + 1e-12)


def check_step_inverse_identities(cdf: EmpiricalCDF, seed: int):
    rng = np.random.default_rng(seed)
    q = rng.random(129)
    x = np.atleast_1d(cdf.quantile(q, method="step"))
    # generalised inverse: F(F^-1(q)) >= q ...
    assert np.all(np.asarray(cdf(x)) >= q - 1e-12)
    # ... and F^-1(F(x)) <= x on the support (it is the smallest such x)
    back = np.atleast_1d(cdf.quantile(np.asarray(cdf(cdf.support)),
                                      method="step"))
    assert np.all(back <= cdf.support + 1e-12)


def check_linear_inverse_hits_knots(cdf: EmpiricalCDF):
    # the interpolated inverse passes exactly through (probs, support)
    knots = np.atleast_1d(cdf.quantile(cdf.probs, method="linear"))
    npt.assert_allclose(knots, cdf.support, rtol=1e-12, atol=0.0)


def check_sampling_ks_below_band(cdf: EmpiricalCDF, seed: int):
    """KS(generated, target) is explainable by sampling noise alone."""
    rng = np.random.default_rng(seed)
    n = 4096
    samples = smirnov_sample(cdf, n, rng, method="step")
    assert samples.shape == (n,)
    ks = ks_distance(EmpiricalCDF.from_samples(samples), cdf)
    # alpha=1e-6: a faithful sampler exceeds this once in a million runs
    assert ks <= dkw_band(n, alpha=1e-6)


def check_stratified_step_ks_tight(cdf: EmpiricalCDF, seed: int):
    """Stratified uniforms + exact inverse give the hard 1/n KS bound."""
    rng = np.random.default_rng(seed)
    n = 512
    u = stratified_uniform(n, rng)
    samples = np.atleast_1d(cdf.quantile(u, method="step"))
    ks = ks_distance(EmpiricalCDF.from_samples(samples), cdf)
    assert ks <= 1.0 / n + 1e-12


def check_antithetic_pairing(cdf: EmpiricalCDF, seed: int):
    rng = np.random.default_rng(seed)
    for n in (1, 2, 7, 100):
        samples = smirnov_sample(cdf, n, rng, antithetic=True)
        assert samples.shape == (n,)
        assert np.all(np.isfinite(samples))


# --- always-on seeded parametrization -------------------------------------

@pytest.mark.parametrize("seed,n_support,weighted", FALLBACK_CASES)
def test_quantile_monotone_and_bounded(seed, n_support, weighted):
    check_quantile_monotone_and_bounded(
        _random_cdf(seed, n_support, weighted), seed
    )


@pytest.mark.parametrize("seed,n_support,weighted", FALLBACK_CASES)
def test_step_inverse_identities(seed, n_support, weighted):
    check_step_inverse_identities(
        _random_cdf(seed, n_support, weighted), seed
    )


@pytest.mark.parametrize("seed,n_support,weighted", FALLBACK_CASES)
def test_linear_inverse_hits_knots(seed, n_support, weighted):
    check_linear_inverse_hits_knots(_random_cdf(seed, n_support, weighted))


@pytest.mark.parametrize("seed,n_support,weighted", FALLBACK_CASES)
def test_sampling_ks_below_band(seed, n_support, weighted):
    check_sampling_ks_below_band(
        _random_cdf(seed, n_support, weighted), seed
    )


@pytest.mark.parametrize("seed,n_support,weighted", FALLBACK_CASES)
def test_stratified_step_ks_tight(seed, n_support, weighted):
    check_stratified_step_ks_tight(
        _random_cdf(seed, n_support, weighted), seed
    )


@pytest.mark.parametrize("seed,n_support,weighted", FALLBACK_CASES)
def test_antithetic_pairing(seed, n_support, weighted):
    check_antithetic_pairing(_random_cdf(seed, n_support, weighted), seed)


def test_invalid_inputs():
    cdf = _random_cdf(0, 8, False)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError, match="positive"):
        smirnov_sample(cdf, 0, rng)
    with pytest.raises(ValueError, match="positive"):
        stratified_uniform(-3, rng)
    with pytest.raises(ValueError, match="unknown quantile method"):
        cdf.quantile(0.5, method="spline")
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        cdf.quantile(1.5)


# --- hypothesis (when available) ------------------------------------------

if HAVE_HYPOTHESIS:
    seeds = st.integers(min_value=0, max_value=2**32 - 1)
    supports = st.integers(min_value=1, max_value=512)
    weighted_flags = st.booleans()

    @settings(max_examples=50, deadline=None)
    @given(seed=seeds, n_support=supports, weighted=weighted_flags)
    def test_hypothesis_quantile_monotone_and_bounded(seed, n_support,
                                                      weighted):
        check_quantile_monotone_and_bounded(
            _random_cdf(seed, n_support, weighted), seed
        )

    @settings(max_examples=50, deadline=None)
    @given(seed=seeds, n_support=supports, weighted=weighted_flags)
    def test_hypothesis_step_inverse_identities(seed, n_support, weighted):
        check_step_inverse_identities(
            _random_cdf(seed, n_support, weighted), seed
        )

    @settings(max_examples=50, deadline=None)
    @given(seed=seeds, n_support=supports, weighted=weighted_flags)
    def test_hypothesis_linear_inverse_hits_knots(seed, n_support,
                                                  weighted):
        check_linear_inverse_hits_knots(
            _random_cdf(seed, n_support, weighted)
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n_support=supports, weighted=weighted_flags)
    def test_hypothesis_sampling_ks_below_band(seed, n_support, weighted):
        check_sampling_ks_below_band(
            _random_cdf(seed, n_support, weighted), seed
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n_support=supports, weighted=weighted_flags)
    def test_hypothesis_stratified_step_ks_tight(seed, n_support,
                                                 weighted):
        check_stratified_step_ks_tight(
            _random_cdf(seed, n_support, weighted), seed
        )
