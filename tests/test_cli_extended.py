"""Tests for the extended CLI subcommands."""

from repro.cli import main


class TestSmirnovCommand:
    def test_prints_family_shares(self, capsys):
        rc = main(["smirnov", "--functions", "500", "--requests", "2000",
                   "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sampled 2000 requests" in out
        assert "%" in out

    def test_step_inverse_and_csv(self, capsys, tmp_path):
        out_path = tmp_path / "reqs.csv"
        rc = main(["smirnov", "--functions", "500", "--requests", "1000",
                   "--inverse", "step", "--out", str(out_path)])
        assert rc == 0
        text = out_path.read_text()
        assert text.startswith("timestamp_s,workload_id,runtime_ms,family")
        assert len(text.splitlines()) == 1001

    def test_huawei_trace(self, capsys):
        rc = main(["smirnov", "--trace", "huawei", "--requests", "1000"])
        assert rc == 0
        assert "huawei" in capsys.readouterr().out


class TestSpecInfoCommand:
    def test_reports_spec_contents(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        main(["shrinkray", "--functions", "500", "--max-rps", "2",
              "--duration", "10", "--seed", "1", "--out", str(spec_path)])
        capsys.readouterr()
        rc = main(["spec-info", "--spec", str(spec_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "functions" in out
        assert "family shares" in out
        assert "thumbnails" in out


class TestSensitivityCommand:
    def test_prints_metric_ranges(self, capsys):
        rc = main(["sensitivity", "--seeds", "2", "--functions", "400",
                   "--duration", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "invocation_duration_ks" in out
        assert "range=[" in out
