"""Unit tests for the deterministic fan-out primitives and the
jobs/shards equivalence of the parallelised core stages."""

import numpy as np
import pytest

from repro.core.aggregation import aggregate_functions
from repro.core.mapping import map_functions
from repro.parallel import (
    DEFAULT_MAX_SHARDS,
    auto_shards,
    effective_jobs,
    map_shards,
    shard_bounds,
    spawn_rngs,
)
from repro.traces import synthetic_azure_trace
from repro.workloads import build_default_pool


class TestEffectiveJobs:
    def test_none_is_sequential(self):
        assert effective_jobs(None) == 1

    def test_literal_counts(self):
        assert effective_jobs(1) == 1
        assert effective_jobs(5) == 5

    def test_zero_and_negative_mean_all_cores(self):
        import os
        cores = os.cpu_count() or 1
        assert effective_jobs(0) == cores
        assert effective_jobs(-1) == cores


class TestAutoShards:
    def test_empty_input(self):
        assert auto_shards(0) == 0
        assert auto_shards(-3) == 0

    def test_capped_by_max_shards(self):
        assert auto_shards(10_000) == DEFAULT_MAX_SHARDS
        assert auto_shards(10_000, max_shards=3) == 3

    def test_capped_by_item_count(self):
        assert auto_shards(2) == 2
        assert auto_shards(1) == 1

    def test_min_per_shard_collapses_small_inputs(self):
        assert auto_shards(100, min_per_shard=256) == 1
        assert auto_shards(512, min_per_shard=256) == 2
        assert auto_shards(512, min_per_shard=0) == 8


class TestShardBounds:
    def test_covers_range_contiguously(self):
        for n_items in (1, 7, 16, 100):
            for n_shards in (1, 3, 8):
                bounds = shard_bounds(n_items, n_shards)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_items
                for (_, hi), (lo2, _) in zip(bounds, bounds[1:]):
                    assert hi == lo2

    def test_sizes_differ_by_at_most_one(self):
        sizes = [hi - lo for lo, hi in shard_bounds(10, 3)]
        assert sizes == [4, 3, 3]

    def test_clipped_to_item_count(self):
        assert len(shard_bounds(2, 8)) == 2
        assert shard_bounds(0, 4) == [(0, 0)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)
        with pytest.raises(ValueError):
            shard_bounds(5, 0)


class TestSpawnRngs:
    def test_children_deterministic(self):
        _, kids_a = spawn_rngs(42, 4)
        _, kids_b = spawn_rngs(42, 4)
        for a, b in zip(kids_a, kids_b):
            assert np.array_equal(a.random(8), b.random(8))

    def test_children_independent_of_each_other(self):
        _, kids = spawn_rngs(42, 2)
        assert not np.array_equal(kids[0].random(8), kids[1].random(8))

    def test_root_usable_after_spawn(self):
        root, _ = spawn_rngs(7, 3)
        other, _ = spawn_rngs(7, 5)  # different spawn count, same stream
        assert np.array_equal(root.random(4), other.random(4))

    def test_accepts_generator_and_rejects_negative(self):
        gen = np.random.default_rng(1)
        root, kids = spawn_rngs(gen, 2)
        assert root is gen and len(kids) == 2
        _, none = spawn_rngs(3, 0)
        assert none == []
        with pytest.raises(ValueError):
            spawn_rngs(3, -1)


def _square(x):  # module-level: picklable for the process pool
    return x * x


def _boom(x):
    raise RuntimeError(f"shard {x} failed")


class TestMapShards:
    def test_inline_and_pooled_agree(self):
        args = list(range(10))
        assert map_shards(_square, args, jobs=1) == \
            map_shards(_square, args, jobs=2) == [x * x for x in args]

    def test_empty(self):
        assert map_shards(_square, []) == []

    def test_single_shard_runs_inline(self):
        assert map_shards(_square, [3], jobs=8) == [9]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="shard"):
            map_shards(_boom, [1], jobs=1)
        with pytest.raises(RuntimeError, match="shard"):
            map_shards(_boom, [1, 2, 3], jobs=2)


@pytest.fixture(scope="module")
def trace():
    return synthetic_azure_trace(n_functions=900, seed=11)


class TestStageEquivalence:
    """jobs / shards must not change what the core stages compute."""

    def test_aggregation_invariant(self, trace):
        base, base_audit = aggregate_functions(trace)
        for kwargs in ({"jobs": 2}, {"shards": 3}, {"shards": 3, "jobs": 2}):
            alt, alt_audit = aggregate_functions(trace, **kwargs)
            assert np.array_equal(base.per_minute, alt.per_minute)
            assert base.durations_ms.tobytes() == alt.durations_ms.tobytes()
            assert list(base.function_ids) == list(alt.function_ids)
            assert np.array_equal(base_audit.group_sizes,
                                  alt_audit.group_sizes)

    def test_mapping_invariant(self, trace):
        pool = build_default_pool()
        agg, _ = aggregate_functions(trace)
        base = map_functions(agg, pool)
        for kwargs in ({"jobs": 2}, {"shards": 5}):
            alt = map_functions(agg, pool, **kwargs)
            assert np.array_equal(base.workload_indices,
                                  alt.workload_indices)
            assert np.array_equal(base.fallback_mask, alt.fallback_mask)

    def test_mapping_rejects_nonpositive_runtimes(self, trace):
        pool = build_default_pool()
        agg, _ = aggregate_functions(trace)
        agg.durations_ms[0] = 0.0
        with pytest.raises(ValueError, match="positive"):
            map_functions(agg, pool)
