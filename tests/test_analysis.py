"""Tests for the figure builders: every paper claim, asserted.

These are the quantitative versions of the visual claims in the paper's
evaluation; the benchmark harness prints the same numbers.  A small
FigureContext keeps the suite fast; all asserted statistics are
scale-free.
"""

import numpy as np
import pytest

from repro.analysis import FigureContext, render_figure, render_series_table


@pytest.fixture(scope="module")
def ctx():
    return FigureContext(azure_functions=3000, seed=13)


class TestFig1:
    def test_baselines_violate_runtime_cdf(self, ctx):
        s = ctx.fig1_motivation()["summary"]
        assert s["ks_inv_poisson_vs_azure"] > 0.3
        assert s["ks_inv_sampling_vs_azure"] > 0.2

    def test_poisson_popularity_uniform(self, ctx):
        s = ctx.fig1_motivation()["summary"]
        # top workload of 10 carries ~10% of requests, vs ~90%+ in Azure
        assert s["poisson_top10pct_share"] < 0.2

    def test_poisson_load_flat(self, ctx):
        s = ctx.fig1_motivation()["summary"]
        assert s["poisson_load_cv"] < s["azure_load_cv"]

    def test_series_complete(self, ctx):
        series = ctx.fig1_motivation()["series"]
        for panel in ("1a", "1b", "1c", "1d"):
            for label in ("azure", "poisson", "sampling"):
                assert f"{panel}/{label}" in series


class TestFig3:
    def test_ninety_percent_cvs_below_one(self, ctx):
        s = ctx.fig3_cv()["summary"]
        assert 0.85 <= s["frac_duration_cv_below_1"] <= 0.97
        assert 0.85 <= s["frac_invocations_cv_below_1"] <= 0.97


class TestFig4:
    def test_popularity_essentially_unchanged(self, ctx):
        s = ctx.fig4_popularity_change()["summary"]
        assert s["frac_changes_below_1pct"] >= 0.99
        assert s["n_super_functions"] < s["n_original_functions"]


class TestFig6:
    def test_pool_beats_vanilla(self, ctx):
        s = ctx.fig6_pool_cdfs()["summary"]
        assert s["ks_pool_vs_azure"] < s["ks_vanilla_vs_azure"]
        assert s["ks_pool_vs_azure"] < 0.45
        assert 1900 <= s["pool_size"] <= 2600


class TestFig7:
    def test_workload_memory_left_of_azure(self, ctx):
        s = ctx.fig7_memory()["summary"]
        # "clearly shifted to its left" (paper section 4.1)
        assert s["faasrail_median_mb"] < s["azure_median_mb"]
        # but the same order of magnitude
        assert s["faasrail_median_mb"] > s["azure_median_mb"] / 10


class TestFig8:
    def test_faasrail_tracks_poisson_does_not(self, ctx):
        s = ctx.fig8_load_over_time()["summary"]
        assert s["corr_faasrail_vs_azure_thumb"] > 0.95
        assert s["corr_poisson_vs_azure_thumb"] < 0.5
        assert s["faasrail_rel_range"] > s["poisson_rel_range"]


class TestFig9:
    def test_spec_cdf_tracks_azure(self, ctx):
        s = ctx.fig9_spec_cdf()["summary"]
        assert s["ks_relative_band"] < 0.08
        assert s["total_requests"] > 50_000


class TestFig10:
    def test_popularity_skew_preserved(self, ctx):
        s = ctx.fig10_popularity()["summary"]
        assert s["azure_top10pct_share"] > 0.9
        assert s["faasrail_top10pct_share"] > 0.85
        # FaaSRail's curve sits right of Azure's (fewer distinct Functions)
        assert (s["faasrail_top1pct_share"]
                <= s["azure_top1pct_share"] + 0.05)


class TestFig11:
    def test_azure_tracked_closely(self, ctx):
        s = ctx.fig11_smirnov()["summary"]
        assert s["ks_azure"] < 0.08

    def test_huawei_within_interpolation_smear(self, ctx):
        # linear-inverse sampling smooths Huawei's 104-point staircase;
        # the bench reports both inverses, here we bound the default
        s = ctx.fig11_smirnov()["summary"]
        assert s["ks_huawei"] < 0.45


class TestFig12:
    def test_azure_balanced_huawei_imbalanced(self, ctx):
        s = ctx.fig12_balance()["summary"]
        assert s["azure_families_present"] >= 9
        assert s["huawei_families_present"] < 10
        assert s["huawei_lr_training_share"] == 0.0
        assert 0.0 < s["azure_lr_training_share"] < 0.15


class TestRendering:
    def test_render_figure_contains_summary_and_series(self, ctx):
        data = ctx.fig3_cv()
        text = render_figure("fig3", data)
        assert "fig3" in text
        assert "frac_duration_cv_below_1" in text
        assert "execution_time" in text

    def test_render_series_table_downsamples(self):
        series = {"s": (np.linspace(0, 1, 1000), np.linspace(0, 1, 1000))}
        text = render_series_table(series, n_points=5)
        assert text.count("(") == 5

    def test_render_families_line(self, ctx):
        text = render_figure("fig12", ctx.fig12_balance())
        assert "families:" in text


class TestContextCaching:
    def test_artifacts_built_once(self, ctx):
        assert ctx.azure is ctx.azure
        assert ctx.pool is ctx.pool
        assert ctx.spec is ctx.spec
