"""Tests for the seed-sensitivity harness."""

import pytest

from repro.analysis import SensitivityResult, seed_sweep
from repro.workloads import build_default_pool


class TestSensitivityResult:
    def test_stats(self):
        r = SensitivityResult("m", (0.1, 0.2, 0.3))
        assert r.mean == pytest.approx(0.2)
        assert r.best == 0.1
        assert r.worst == 0.3
        assert r.std > 0


class TestSeedSweep:
    @pytest.fixture(scope="class")
    def results(self):
        return seed_sweep(range(3), n_functions=600, max_rps=5.0,
                          duration_minutes=15,
                          pool=build_default_pool())

    def test_metrics_present(self, results):
        assert set(results) == {
            "invocation_duration_ks",
            "load_shape_corr",
            "popularity_top10pct_spec",
        }
        for r in results.values():
            assert len(r.values) == 3

    def test_fidelity_stable_across_seeds(self, results):
        ks = results["invocation_duration_ks"]
        assert ks.worst < 0.12       # every seed downscales faithfully
        assert ks.std < 0.05         # and the spread is tight
        corr = results["load_shape_corr"]
        assert corr.best > 0.95

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            seed_sweep([])
