"""Golden end-to-end determinism: the parallel / cached pipeline must be
byte-identical to the sequential cold path.

The contract (ISSUE 2 tentpole): for any seed and trace source,
``shrinkray -> generate -> replay`` produces identical spec JSON,
identical request CSV bytes, and identical replay outcome counts across

- ``jobs=1`` (sequential) vs ``jobs=4`` (process-pool fan-out),
- cold cache (miss + store) vs warm cache (hit).

Shard counts derive from the data, randomness from per-shard spawned
generators, and reductions are ordered -- so the equality here is exact,
not statistical.
"""

import json

import pytest

from repro.cache import ContentCache
from repro.core import ShrinkRay
from repro.loadgen import generate_request_trace, replay, save_request_trace_csv
from repro.platform import FaaSCluster, profiles_from_spec, summarize
from repro.traces import synthetic_azure_trace, synthetic_huawei_public_trace
from repro.workloads import build_default_pool

SOURCES = {
    "azure": lambda seed: synthetic_azure_trace(n_functions=700, seed=seed),
    "huawei-public": lambda seed: synthetic_huawei_public_trace(
        n_functions=700, seed=seed
    ),
}
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def pool():
    return build_default_pool()


def _csv_bytes(req) -> bytes:
    # Same columns and formatting save_request_trace_csv writes, built
    # in memory so runs can be compared without touching disk.
    rows = ["timestamp_s,workload_id,function_id,runtime_ms,family"]
    for i in range(req.n_requests):
        rows.append(
            f"{req.timestamps_s[i]:.6f},{req.workload_ids[i]},"
            f"{req.function_ids[i]},{req.runtimes_ms[i]:.6g},"
            f"{req.families[i]}"
        )
    return ("\n".join(rows) + "\n").encode()


def _run_pipeline(trace, pool, seed, *, jobs=None, cache=None):
    """shrinkray -> generate -> replay; returns comparable artifacts."""
    spec = ShrinkRay(jobs=jobs).run(
        trace, pool, max_rps=4.0, duration_minutes=5, seed=seed,
        cache=cache,
    )
    req = generate_request_trace(spec, seed=seed, jobs=jobs, cache=cache)
    backend = FaaSCluster(
        profiles_from_spec(spec), n_nodes=4, node_memory_mb=8_192.0
    )
    result = replay(req, backend)
    summary = summarize(result.records)
    outcomes = {
        "n_invocations": summary["n_invocations"],
        "ok_fraction": summary["ok_fraction"],
        "cold_fraction": summary["cold_fraction"],
    }
    spec_json = json.dumps(spec.to_dict(), sort_keys=True)
    return spec_json, _csv_bytes(req), outcomes


@pytest.mark.parametrize("source", sorted(SOURCES))
@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_and_cached_runs_byte_identical(source, seed, pool,
                                                 tmp_path):
    trace = SOURCES[source](seed)

    sequential_cold = _run_pipeline(trace, pool, seed, jobs=1)
    parallel = _run_pipeline(trace, pool, seed, jobs=4)

    cache = ContentCache(tmp_path / "cache")
    cache_cold = _run_pipeline(trace, pool, seed, jobs=1, cache=cache)
    assert cache.misses > 0 and cache.hits == 0
    cache_warm = _run_pipeline(trace, pool, seed, jobs=1, cache=cache)
    assert cache.hits >= 2  # spec + request trace both served from disk

    for label, run in (("jobs=4", parallel), ("cold cache", cache_cold),
                       ("warm cache", cache_warm)):
        assert run[0] == sequential_cold[0], f"{label}: spec JSON differs"
        assert run[1] == sequential_cold[1], f"{label}: request CSV differs"
        assert run[2] == sequential_cold[2], f"{label}: outcomes differ"


def test_csv_on_disk_matches_across_jobs(pool, tmp_path):
    """The actual CSV files the CLI writes are byte-identical too."""
    trace = SOURCES["azure"](7)
    spec = ShrinkRay().run(trace, pool, max_rps=4.0, duration_minutes=4,
                           seed=7)
    paths = []
    for jobs in (1, 3):
        req = generate_request_trace(spec, seed=7, jobs=jobs)
        path = tmp_path / f"requests-jobs{jobs}.csv"
        save_request_trace_csv(req, path)
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()


@pytest.mark.parametrize("source", sorted(SOURCES))
@pytest.mark.parametrize("seed", SEEDS)
def test_telemetry_on_off_byte_identical(source, seed, pool):
    """Enabling telemetry must not perturb a single output byte.

    The instrumentation never touches a random generator, so a fully
    observed run -- registry enabled, drift monitor attached -- produces
    the same spec JSON, request CSV bytes, and replay outcomes as a dark
    run.  Checked across the full seed x trace-source matrix.
    """
    from repro import telemetry
    from repro.telemetry import DriftMonitor

    trace = SOURCES[source](seed)
    dark = _run_pipeline(trace, pool, seed)

    registry = telemetry.MetricsRegistry()
    with telemetry.use(registry):
        spec = ShrinkRay().run(trace, pool, max_rps=4.0,
                               duration_minutes=5, seed=seed)
        req = generate_request_trace(spec, seed=seed)
        drift = DriftMonitor(spec.invocation_duration_cdf(),
                             band=0.5, window=256)
        backend = FaaSCluster(
            profiles_from_spec(spec), n_nodes=4, node_memory_mb=8_192.0
        )
        result = replay(req, backend, drift=drift)
    summary = summarize(result.records)
    observed = (
        json.dumps(spec.to_dict(), sort_keys=True),
        _csv_bytes(req),
        {
            "n_invocations": summary["n_invocations"],
            "ok_fraction": summary["ok_fraction"],
            "cold_fraction": summary["cold_fraction"],
        },
    )

    assert observed[0] == dark[0], "spec JSON differs under telemetry"
    assert observed[1] == dark[1], "request CSV differs under telemetry"
    assert observed[2] == dark[2], "outcomes differ under telemetry"
    # and the observed run actually collected something
    assert registry.counter("generated_requests_total").value == \
        req.n_requests
    assert registry.counter("replay_requests_total").value == req.n_requests
    assert drift.n_observed == req.n_requests
    assert drift.n_windows > 0
    # telemetry is scoped: nothing leaks outside the context manager
    assert telemetry.active() is None


def test_explicit_shards_part_of_the_contract(pool):
    """Same shards = same trace for any jobs; different shards = a
    different (but equally valid) realisation."""
    trace = SOURCES["azure"](5)
    spec = ShrinkRay(shards=3).run(trace, pool, max_rps=4.0,
                                   duration_minutes=6, seed=5)
    a = generate_request_trace(spec, seed=5, shards=3, jobs=1)
    b = generate_request_trace(spec, seed=5, shards=3, jobs=2)
    c = generate_request_trace(spec, seed=5, shards=2, jobs=1)
    assert a.timestamps_s.tobytes() == b.timestamps_s.tobytes()
    assert a.timestamps_s.tobytes() != c.timestamps_s.tobytes()
