"""Tests for the online load generator: arrivals, traces, replay."""

import numpy as np
import pytest

from repro.core import ExperimentSpec, SpecEntry, smirnov_request_sample
from repro.loadgen import (
    RequestTrace,
    cell_counts,
    generate_request_trace,
    generate_smirnov_trace,
    minute_offsets,
    replay,
)
from repro.traces import synthetic_azure_trace
from repro.workloads import build_default_pool


def small_spec(counts=None):
    entries = [
        SpecEntry("fnA", "pyaes:1", "pyaes", 5.0, 32.0),
        SpecEntry("fnB", "matmul:1", "matmul", 50.0, 64.0),
    ]
    if counts is None:
        counts = [[30, 0, 10], [5, 5, 5]]
    return ExperimentSpec("s", "t", 1.0, entries,
                          np.array(counts, dtype=np.int64))


class TestArrivals:
    def test_poisson_counts_random_with_mean(self):
        rng = np.random.default_rng(0)
        counts = np.full(2000, 100, dtype=np.int64)
        realised = cell_counts(counts, "poisson", rng)
        assert realised.mean() == pytest.approx(100, rel=0.05)
        assert realised.std() > 5  # genuinely random

    def test_deterministic_modes_emit_exact(self):
        rng = np.random.default_rng(0)
        counts = np.array([3, 7, 0], dtype=np.int64)
        for mode in ("uniform", "equidistant"):
            np.testing.assert_array_equal(
                cell_counts(counts, mode, rng), counts
            )

    def test_unknown_mode_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="arrival mode"):
            cell_counts(np.array([1]), "gamma", rng)
        with pytest.raises(ValueError, match="arrival mode"):
            minute_offsets(np.array([1]), "gamma", rng)

    def test_offsets_in_minute_and_sorted_within_cell(self):
        rng = np.random.default_rng(1)
        realised = np.array([100, 0, 50], dtype=np.int64)
        off = minute_offsets(realised, "poisson", rng)
        assert off.shape == (150,)
        assert np.all((off >= 0) & (off < 60))
        assert np.all(np.diff(off[:100]) >= 0)  # cell 0 ascending
        assert np.all(np.diff(off[100:]) >= 0)  # cell 2 ascending

    def test_equidistant_evenly_spaced(self):
        rng = np.random.default_rng(2)
        off = minute_offsets(np.array([4]), "equidistant", rng)
        np.testing.assert_allclose(np.diff(off), 15.0)  # constant gaps
        assert 0 <= off[0] < 15.0  # random phase within one gap

    def test_equidistant_phases_decorrelated(self):
        # two one-request cells must not land on the same second
        rng = np.random.default_rng(3)
        off = minute_offsets(np.full(200, 1, dtype=np.int64),
                             "equidistant", rng)
        assert np.unique(np.floor(off)).size > 10

    def test_zero_requests(self):
        rng = np.random.default_rng(3)
        off = minute_offsets(np.array([0, 0]), "uniform", rng)
        assert off.size == 0

    def test_poisson_second_scale_burstiness(self):
        """Per-second counts under Poisson arrivals show index of
        dispersion ~1 (bursty), unlike equidistant (~0)."""
        rng = np.random.default_rng(4)
        realised = np.array([600], dtype=np.int64)  # 10 rps average
        for mode, lo, hi in (("poisson", 0.5, 2.0), ("equidistant", 0.0, 0.2)):
            off = minute_offsets(realised, mode, rng)
            per_sec, _ = np.histogram(off, bins=np.arange(61))
            iod = per_sec.var() / per_sec.mean()
            assert lo <= iod <= hi, f"{mode}: IoD {iod}"


class TestGenerateFromSpec:
    def test_deterministic_mode_exact_totals(self):
        spec = small_spec()
        trace = generate_request_trace(spec, seed=0, arrival_mode="uniform")
        assert trace.n_requests == spec.total_requests

    def test_poisson_mode_close_totals(self):
        spec = small_spec([[600, 600], [600, 600]])
        trace = generate_request_trace(spec, seed=0)
        assert trace.n_requests == pytest.approx(2400, rel=0.15)

    def test_timestamps_sorted_and_within_duration(self):
        spec = small_spec()
        trace = generate_request_trace(spec, seed=1)
        assert np.all(np.diff(trace.timestamps_s) >= 0)
        assert trace.timestamps_s.max() < spec.duration_minutes * 60

    def test_requests_carry_workload_metadata(self):
        spec = small_spec()
        trace = generate_request_trace(spec, seed=1, arrival_mode="uniform")
        a_mask = trace.function_ids == "fnA"
        assert np.all(trace.workload_ids[a_mask] == "pyaes:1")
        assert np.all(trace.runtimes_ms[a_mask] == 5.0)
        assert a_mask.sum() == 40

    def test_minute_structure_respected(self):
        spec = small_spec([[60, 0, 0], [0, 0, 60]])
        trace = generate_request_trace(spec, seed=2, arrival_mode="uniform")
        a_times = trace.timestamps_s[trace.function_ids == "fnA"]
        b_times = trace.timestamps_s[trace.function_ids == "fnB"]
        assert np.all(a_times < 60)
        assert np.all(b_times >= 120)

    def test_empty_spec_rejected(self):
        spec = small_spec([[0, 0, 0], [0, 0, 0]])
        with pytest.raises(ValueError, match="zero requests"):
            generate_request_trace(spec, seed=0, arrival_mode="uniform")


class TestGenerateSmirnov:
    @pytest.fixture(scope="class")
    def sample(self):
        trace = synthetic_azure_trace(n_functions=800, seed=3)
        pool = build_default_pool()
        return smirnov_request_sample(trace, pool, 2_000, seed=3)

    def test_constant_rate_horizon(self, sample):
        trace = generate_smirnov_trace(sample, rate_rps=50.0, seed=0)
        assert trace.n_requests == 2_000
        assert trace.duration_s == pytest.approx(40.0, rel=0.2)

    def test_equidistant_exact(self, sample):
        trace = generate_smirnov_trace(sample, rate_rps=100.0, seed=0,
                                       arrival_mode="equidistant")
        np.testing.assert_allclose(np.diff(trace.timestamps_s), 0.01)

    def test_uniform_sorted(self, sample):
        trace = generate_smirnov_trace(sample, rate_rps=10.0, seed=0,
                                       arrival_mode="uniform")
        assert np.all(np.diff(trace.timestamps_s) >= 0)

    def test_rejects_bad_rate_and_mode(self, sample):
        with pytest.raises(ValueError):
            generate_smirnov_trace(sample, rate_rps=0.0)
        with pytest.raises(ValueError, match="arrival mode"):
            generate_smirnov_trace(sample, rate_rps=1.0,
                                   arrival_mode="burst")


class TestRequestTrace:
    def test_validation(self):
        with pytest.raises(ValueError, match="contain requests"):
            RequestTrace(np.array([]), np.array([]), np.array([]),
                         np.array([]), np.array([]))
        with pytest.raises(ValueError, match="ascending"):
            RequestTrace(np.array([1.0, 0.5]), np.array(["a", "b"]),
                         np.array(["f", "f"]), np.array([1.0, 1.0]),
                         np.array(["x", "x"]))
        with pytest.raises(ValueError, match="align"):
            RequestTrace(np.array([1.0]), np.array(["a", "b"]),
                         np.array(["f"]), np.array([1.0]), np.array(["x"]))

    def test_rate_series(self):
        t = RequestTrace(np.array([0.5, 1.5, 61.0]),
                         np.array(["a"] * 3), np.array(["f"] * 3),
                         np.array([1.0] * 3), np.array(["x"] * 3))
        assert t.per_second_rate()[:2].tolist() == [1, 1]
        assert t.per_minute_rate().tolist() == [2, 1]

    def test_slice_time(self):
        t = RequestTrace(np.array([1.0, 30.0, 90.0]),
                         np.array(["a", "b", "c"]), np.array(["f"] * 3),
                         np.array([1.0] * 3), np.array(["x"] * 3))
        s = t.slice_time(10.0, 100.0)
        assert s.n_requests == 2
        assert list(s.workload_ids) == ["b", "c"]
        with pytest.raises(ValueError, match="no requests"):
            t.slice_time(2.0, 3.0)


class _RecordingBackend:
    def __init__(self):
        self.calls = []

    def invoke(self, timestamp_s, workload_id):
        self.calls.append((timestamp_s, workload_id))

    def drain(self):
        return [f"done-{i}" for i in range(len(self.calls))]


class TestReplay:
    def test_replay_submits_in_order(self):
        spec = small_spec()
        trace = generate_request_trace(spec, seed=0, arrival_mode="uniform")
        backend = _RecordingBackend()
        result = replay(trace, backend)
        assert result.n_requests == trace.n_requests
        assert len(backend.calls) == trace.n_requests
        times = [c[0] for c in backend.calls]
        assert times == sorted(times)

    def test_replay_paced(self):
        # 3 requests over 0.2 virtual seconds at speed 1 -> ~0.2s wall
        t = RequestTrace(np.array([0.0, 0.1, 0.2]),
                         np.array(["a"] * 3), np.array(["f"] * 3),
                         np.array([1.0] * 3), np.array(["x"] * 3))
        backend = _RecordingBackend()
        result = replay(t, backend, speed=1.0)
        assert 0.15 <= result.wall_clock_s <= 2.0

    def test_replay_rejects_bad_speed(self):
        t = RequestTrace(np.array([0.0]), np.array(["a"]), np.array(["f"]),
                         np.array([1.0]), np.array(["x"]))
        with pytest.raises(ValueError, match="speed"):
            replay(t, _RecordingBackend(), speed=0.0)

    def test_replay_finite_speed_bounds_wall_clock(self):
        # 12 virtual seconds at speed 60 -> at least 0.2s wall clock,
        # and nowhere near real time
        t = RequestTrace(np.linspace(0.0, 12.0, 8),
                         np.array(["a"] * 8), np.array(["f"] * 8),
                         np.full(8, 1.0), np.array(["x"] * 8))
        backend = _RecordingBackend()
        result = replay(t, backend, speed=60.0)
        assert len(backend.calls) == 8
        assert 0.15 <= result.wall_clock_s <= 3.0

    def test_result_metric_guards(self):
        spec = small_spec()
        trace = generate_request_trace(spec, seed=0, arrival_mode="uniform")
        result = replay(trace, _RecordingBackend())
        with pytest.raises(ValueError, match="latencies"):
            result.latencies_ms()
        with pytest.raises(ValueError, match="cold"):
            result.cold_start_fraction()

    def test_result_metrics_on_empty_records(self):
        from repro.loadgen import ReplayResult

        result = ReplayResult(n_requests=0, wall_clock_s=0.0, records=[])
        with pytest.raises(ValueError, match="latencies"):
            result.latencies_ms()
        with pytest.raises(ValueError, match="cold"):
            result.cold_start_fraction()

    def test_result_metrics_on_mixed_records(self):
        """Records lacking latency/cold fields are skipped, not fatal."""
        from repro.loadgen import ReplayResult
        from repro.platform import InvocationRecord

        full = InvocationRecord("w", 0, 0.0, 0.0, 0.1, True)
        result = ReplayResult(n_requests=2, wall_clock_s=0.0,
                              records=[full, "opaque-record"])
        np.testing.assert_allclose(result.latencies_ms(), [100.0])
        assert result.cold_start_fraction() == 1.0
