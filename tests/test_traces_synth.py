"""Tests for the synthetic trace generators and their calibration.

The calibration assertions encode the statistical facts the paper relies on
(DESIGN.md section 1); tolerances are loose enough to be seed-robust but
tight enough to catch drift in the generators.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import coefficient_of_variation
from repro.traces import (
    MINUTES_PER_DAY,
    invocation_duration_cdf,
    synthetic_azure_multiday,
    synthetic_azure_trace,
    synthetic_huawei_trace,
)
from repro.traces.synth import (
    LognormalComponent,
    correlate_popularity_with_duration,
    diurnal_profile,
    sample_duration_mixture,
    spread_over_minutes,
    synth_app_memory,
    zipf_invocation_counts,
)


class TestMixture:
    def test_sample_in_bounds(self):
        comps = [LognormalComponent(1.0, 100.0, 1.0)]
        d = sample_duration_mixture(5000, comps, np.random.default_rng(0),
                                    lo_ms=10.0, hi_ms=1000.0)
        assert d.min() >= 10.0 and d.max() <= 1000.0

    def test_component_median_respected(self):
        comps = [LognormalComponent(1.0, 50.0, 0.5)]
        d = sample_duration_mixture(20000, comps, np.random.default_rng(1))
        assert np.median(d) == pytest.approx(50.0, rel=0.05)

    def test_rejects_empty_components(self):
        with pytest.raises(ValueError):
            sample_duration_mixture(10, [], np.random.default_rng(0))

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            sample_duration_mixture(
                10, [LognormalComponent(0.0, 10.0, 1.0)],
                np.random.default_rng(0),
            )

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            sample_duration_mixture(
                0, [LognormalComponent(1.0, 10.0, 1.0)],
                np.random.default_rng(0),
            )


class TestZipfCounts:
    def test_sum_exact(self):
        c = zipf_invocation_counts(1000, 123_456, np.random.default_rng(0))
        assert c.sum() == 123_456

    def test_descending(self):
        c = zipf_invocation_counts(500, 100_000, np.random.default_rng(1))
        assert np.all(np.diff(c) <= 0)

    def test_min_invocations_respected(self):
        c = zipf_invocation_counts(100, 10_000, np.random.default_rng(2),
                                   min_invocations=5)
        assert c.min() >= 5

    def test_rejects_impossible_total(self):
        with pytest.raises(ValueError, match="cannot give"):
            zipf_invocation_counts(100, 50, np.random.default_rng(0))

    def test_heavier_exponent_more_skew(self):
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        light = zipf_invocation_counts(2000, 10**7, rng1, exponent=1.1)
        heavy = zipf_invocation_counts(2000, 10**7, rng2, exponent=1.9)
        top_light = light[:20].sum() / light.sum()
        top_heavy = heavy[:20].sum() / heavy.sum()
        assert top_heavy > top_light


class TestPopularityDurationCoupling:
    def test_preserves_multiset_of_counts(self):
        rng = np.random.default_rng(0)
        d = rng.lognormal(5, 1, 300)
        sc = zipf_invocation_counts(300, 10**6, rng)
        c = correlate_popularity_with_duration(d, sc, rng)
        assert sorted(c.tolist()) == sorted(sc.tolist())

    def test_beta_zero_is_independent(self):
        rng = np.random.default_rng(0)
        d = np.sort(rng.lognormal(5, 1, 2000))
        sc = zipf_invocation_counts(2000, 10**7, rng)
        c = correlate_popularity_with_duration(d, sc, rng, beta=0.0, sigma=1.0)
        # no systematic preference for short durations
        weighted_mean = np.average(np.log(d), weights=c)
        assert abs(weighted_mean - np.log(d).mean()) < 1.0

    def test_high_beta_prefers_short(self):
        rng = np.random.default_rng(0)
        d = rng.lognormal(5, 1.5, 2000)
        sc = zipf_invocation_counts(2000, 10**7, rng)
        c = correlate_popularity_with_duration(d, sc, rng, beta=2.0, sigma=0.1)
        weighted_mean = np.average(np.log(d), weights=c)
        assert weighted_mean < np.log(d).mean() - 1.0

    def test_rejects_negative_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            correlate_popularity_with_duration(
                np.ones(3), np.ones(3, dtype=np.int64), rng, beta=-1
            )
        with pytest.raises(ValueError):
            correlate_popularity_with_duration(
                np.ones(3), np.ones(3, dtype=np.int64), rng, sigma=-1
            )


class TestSpreadOverMinutes:
    def test_row_sums_exact(self):
        rng = np.random.default_rng(0)
        counts = np.array([0, 1, 100, 50_000], dtype=np.int64)
        m = spread_over_minutes(counts, rng, n_minutes=60)
        np.testing.assert_array_equal(m.sum(axis=1), counts)

    def test_shape_and_dtype(self):
        rng = np.random.default_rng(0)
        m = spread_over_minutes(np.array([10]), rng, n_minutes=30)
        assert m.shape == (1, 30) and m.dtype == np.int32

    def test_sparse_functions_concentrated(self):
        rng = np.random.default_rng(1)
        counts = np.full(50, 30, dtype=np.int64)
        m = spread_over_minutes(counts, rng, n_minutes=MINUTES_PER_DAY,
                                sparse_threshold=1000)
        active_minutes = (m > 0).sum(axis=1)
        # 30 invocations land in at most 32 active minutes by construction
        assert np.all(active_minutes <= 32)

    def test_popular_functions_follow_profile(self):
        rng = np.random.default_rng(2)
        prof = diurnal_profile(240, amplitude=0.5)
        counts = np.array([10**6], dtype=np.int64)
        m = spread_over_minutes(counts, rng, n_minutes=240, profile=prof,
                                burst_gamma_shape=50.0, sparse_threshold=10)
        corr = np.corrcoef(m[0].astype(float), prof)[0, 1]
        assert corr > 0.9

    def test_gamma_shape_array_per_function(self):
        rng = np.random.default_rng(3)
        counts = np.array([10**5, 10**5], dtype=np.int64)
        m = spread_over_minutes(
            counts, rng, n_minutes=720,
            burst_gamma_shape=np.array([100.0, 0.1]), sparse_threshold=10,
        )
        cv = m.std(axis=1) / m.mean(axis=1)
        assert cv[1] > 3 * cv[0]  # small shape => much burstier

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            spread_over_minutes(np.array([-1]), np.random.default_rng(0))

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError, match="positive"):
            spread_over_minutes(np.array([1]), np.random.default_rng(0),
                                burst_gamma_shape=0.0)

    def test_rejects_profile_mismatch(self):
        with pytest.raises(ValueError, match="profile"):
            spread_over_minutes(np.array([1]), np.random.default_rng(0),
                                n_minutes=10, profile=np.ones(5))

    @given(st.integers(0, 10_000), st.integers(2, 200))
    @settings(max_examples=30, deadline=None)
    def test_property_count_conservation(self, count, minutes):
        rng = np.random.default_rng(count + minutes)
        m = spread_over_minutes(np.array([count], dtype=np.int64), rng,
                                n_minutes=minutes)
        assert int(m.sum()) == count


class TestDiurnalProfile:
    def test_mean_one(self):
        p = diurnal_profile()
        assert p.mean() == pytest.approx(1.0)
        assert p.shape == (MINUTES_PER_DAY,)

    def test_positive(self):
        p = diurnal_profile(amplitude=0.9, secondary=0.5)
        assert np.all(p > 0)


class TestAppMemory:
    def test_bounds_and_coverage(self):
        apps = np.array(["a", "b", "a", "c"])
        mem = synth_app_memory(apps, np.random.default_rng(0))
        assert set(mem) == {"a", "b", "c"}
        assert all(16.0 <= v <= 4096.0 for v in mem.values())


class TestAzureCalibration:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthetic_azure_trace(n_functions=8000, seed=42)

    def test_half_functions_subsecond(self, trace):
        frac = (trace.durations_ms < 1000.0).mean()
        assert 0.40 <= frac <= 0.60

    def test_invocations_skew_short(self, trace):
        w = invocation_duration_cdf(trace)(1000.0)
        assert 0.70 <= w <= 0.95
        # and strictly left of the per-function CDF
        assert w > (trace.durations_ms < 1000.0).mean()

    def test_popularity_extremely_skewed(self, trace):
        c = np.sort(trace.invocations_per_function)[::-1]
        top8 = c[: int(0.08 * c.size)].sum() / c.sum()
        assert top8 >= 0.95

    def test_ninety_percent_low_rate(self, trace):
        low = (trace.invocations_per_function <= MINUTES_PER_DAY).mean()
        assert 0.80 <= low <= 0.97

    def test_durations_span_orders_of_magnitude(self, trace):
        assert trace.durations_ms.max() / trace.durations_ms.min() >= 100.0

    def test_diurnal_aggregate(self, trace):
        rel = trace.aggregate_per_minute / trace.aggregate_per_minute.max()
        assert rel.min() >= 0.3  # load varies but never collapses
        from repro.traces.synth import diurnal_profile as dp

        corr = np.corrcoef(rel, dp(amplitude=0.18, secondary=0.08))[0, 1]
        assert corr > 0.8

    def test_total_matches_request(self):
        t = synthetic_azure_trace(n_functions=500, total_invocations=100_000,
                                  seed=0)
        assert t.total_invocations == 100_000

    def test_deterministic(self):
        a = synthetic_azure_trace(n_functions=300, seed=9)
        b = synthetic_azure_trace(n_functions=300, seed=9)
        np.testing.assert_array_equal(a.per_minute, b.per_minute)
        np.testing.assert_allclose(a.durations_ms, b.durations_ms)

    def test_memory_reported(self, trace):
        mem = trace.memory_per_app_array()
        assert mem.size > 1000
        assert np.median(mem) == pytest.approx(120.0, rel=0.5)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            synthetic_azure_trace(n_functions=0)


class TestAzureMultiday:
    def test_cv_mostly_below_one(self):
        trace = synthetic_azure_trace(n_functions=3000, seed=3)
        md = synthetic_azure_multiday(trace, n_days=14, seed=3)
        cv_dur = coefficient_of_variation(md.daily_avg_duration_ms)
        cv_inv = coefficient_of_variation(md.daily_invocations)
        assert 0.80 <= (cv_dur < 1.0).mean() <= 0.97
        assert 0.80 <= (cv_inv < 1.0).mean() <= 0.97

    def test_shapes(self):
        trace = synthetic_azure_trace(n_functions=100, seed=0)
        md = synthetic_azure_multiday(trace, n_days=5, seed=0)
        assert md.n_functions == 100 and md.n_days == 5


class TestHuaweiCalibration:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthetic_huawei_trace(seed=7)

    def test_cardinality(self, trace):
        assert trace.n_functions == 104

    def test_much_faster_than_azure(self, trace):
        assert np.median(trace.durations_ms) < 100.0
        assert (trace.durations_ms < 1000.0).mean() > 0.9

    def test_weighted_cdf_fast(self, trace):
        w = invocation_duration_cdf(trace)
        assert w(100.0) > 0.8

    def test_high_invocation_volume(self, trace):
        # orders of magnitude more invocations per function than Azure
        assert trace.total_invocations / trace.n_functions > 10_000

    def test_no_memory_data(self, trace):
        assert trace.app_memory_mb == {}
