"""Tests for the HTTP backend, stub server, and CO-safe recording."""

import time

import pytest

from repro.platform import (
    HTTPBackend,
    HTTPConnectionError,
    HTTPStatusError,
    HTTPTimeoutError,
    StubServer,
)


class TestStubServer:
    def test_serves_and_counts_requests(self):
        with StubServer() as stub:
            backend = HTTPBackend(stub.url)
            backend.invoke(0.0, "w0")
            backend.invoke(1.0, "w1")
            assert stub.n_requests == 2
        records = backend.drain()
        assert [r.workload_id for r in records] == ["w0", "w1"]
        assert backend.drain() == []  # drain clears

    def test_fail_every_returns_retryable_503(self):
        with StubServer(fail_every=2) as stub:
            backend = HTTPBackend(stub.url)
            backend.invoke(0.0, "w0")  # request 1: ok
            with pytest.raises(HTTPStatusError) as exc_info:
                backend.invoke(1.0, "w1")  # request 2: injected 503
            assert exc_info.value.status == 503
            assert exc_info.value.retryable
            backend.invoke(2.0, "w2")  # request 3: ok again

    def test_validation(self):
        with pytest.raises(ValueError, match="delay_s"):
            StubServer(delay_s=-1.0)
        with pytest.raises(ValueError, match="timeout_s"):
            HTTPBackend("http://localhost", timeout_s=0.0)


class TestErrorTaxonomy:
    def test_status_retryability(self):
        assert HTTPStatusError(500).retryable
        assert HTTPStatusError(503).retryable
        assert HTTPStatusError(429).retryable
        assert not HTTPStatusError(404).retryable
        assert not HTTPStatusError(400).retryable

    def test_connection_refused_is_retryable(self):
        backend = HTTPBackend("http://127.0.0.1:1", timeout_s=1.0)
        with pytest.raises(HTTPConnectionError) as exc_info:
            backend.invoke(0.0, "w")
        assert exc_info.value.retryable

    def test_slow_backend_times_out(self):
        with StubServer(delay_s=1.0) as stub:
            backend = HTTPBackend(stub.url, timeout_s=0.1)
            with pytest.raises(HTTPTimeoutError) as exc_info:
                backend.invoke(0.0, "w")
            assert exc_info.value.retryable

    def test_exhausted_deadline_fails_before_sending(self):
        backend = HTTPBackend("http://127.0.0.1:1")
        with pytest.raises(HTTPTimeoutError, match="deadline"):
            backend.invoke_at(0.0, "w", deadline_s=0.0)
        assert backend.n_sent == 0  # never left the client


class TestCoordinatedOmissionSafety:
    """Acceptance: latencies are measured from the *scheduled* send
    time, and the record structure separates dispatcher stall
    (queueing) from backend slowness (service time)."""

    def test_latency_measured_from_scheduled_send(self):
        lag_s = 0.2
        with StubServer() as stub:
            backend = HTTPBackend(stub.url)
            # dispatcher running late: the scheduled send was lag_s ago
            backend.invoke_at(0.0, "w",
                              scheduled_wall_s=time.time() - lag_s)
        (record,) = backend.drain()
        # lag shows up as latency (CO-safe), not a stretched schedule
        assert record.latency_ms >= lag_s * 1e3
        assert record.queueing_ms == pytest.approx(lag_s * 1e3, abs=50.0)
        # a fast backend stays fast in service time even when dispatched
        # late -- the signal that separates stall from slowness
        assert record.service_ms < record.queueing_ms

    def test_slow_backend_shows_in_service_time_not_queueing(self):
        delay_s = 0.15
        with StubServer(delay_s=delay_s) as stub:
            backend = HTTPBackend(stub.url)
            backend.invoke_at(0.0, "w", scheduled_wall_s=time.time())
        (record,) = backend.drain()
        assert record.service_ms >= delay_s * 1e3
        assert record.queueing_ms < record.service_ms

    def test_plain_invoke_anchors_arrival_at_send(self):
        with StubServer() as stub:
            backend = HTTPBackend(stub.url)
            backend.invoke(0.0, "w")
        (record,) = backend.drain()
        assert record.queueing_ms == 0.0
        assert record.arrival_s == record.start_s

    def test_dispatch_lag_summary_flags_the_stall(self):
        import numpy as np

        from repro.platform import dispatch_lag_summary

        lag_ms = np.array([0.0, 0.0, 0.0, 120.0, 250.0])
        s = dispatch_lag_summary(lag_ms)
        assert s["n_requests"] == 5
        assert s["max_ms"] == 250.0
        assert s["late_fraction"] == pytest.approx(0.4)
        with pytest.raises(ValueError, match="no dispatch lag"):
            dispatch_lag_summary(np.array([]))


class TestServiceIntegration:
    def test_paced_service_records_lag_against_slow_stub(self, tmp_path):
        """The full open loop: a paced service run against a slow stub
        accrues dispatch lag that the coverage report surfaces."""
        import numpy as np

        from repro.loadgen import RequestTrace
        from repro.loadgen.service import ServiceConfig, run_service

        n = 12
        ts = np.linspace(0.0, 0.25, n)
        trace = RequestTrace(ts, np.array(["w"] * n),
                             np.array([""] * n), np.full(n, 1.0),
                             np.array(["f"] * n))
        with StubServer(delay_s=0.05) as stub:
            import functools

            result = run_service(
                trace,
                functools.partial(_backend_factory, stub.url),
                service_dir=tmp_path,
                config=ServiceConfig(workers=0, speed=1.0,
                                     max_shards=1),
            )
        assert result.coverage.ok
        assert result.outcome_counts()["ok"] == n
        # a 50 ms backend against ~23 ms spacing must fall behind
        assert result.coverage.dispatch_lag_ms["max"] > 0.0
        # records anchor latency at the scheduled send: backend service
        # time plus accumulated dispatch lag
        lat = [r.latency_ms for r in result.records]
        assert max(lat) > 50.0


def _backend_factory(url):
    return HTTPBackend(url, timeout_s=5.0)
