"""Tests for burstiness metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    burstiness_parameter,
    index_of_dispersion,
    peak_to_mean,
    rate_autocorrelation,
)


class TestIndexOfDispersion:
    def test_poisson_near_one(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(20.0, size=5000)
        assert index_of_dispersion(counts) == pytest.approx(1.0, abs=0.1)

    def test_constant_is_zero(self):
        assert index_of_dispersion(np.full(100, 7)) == 0.0

    def test_bursty_above_one(self):
        counts = np.zeros(100)
        counts[::10] = 100
        assert index_of_dispersion(counts) > 5

    def test_validation(self):
        with pytest.raises(ValueError):
            index_of_dispersion(np.array([1]))
        with pytest.raises(ValueError):
            index_of_dispersion(np.zeros(10))


class TestBurstinessParameter:
    def test_periodic_minus_one(self):
        gaps = np.full(100, 2.0)
        assert burstiness_parameter(gaps) == pytest.approx(-1.0)

    def test_exponential_near_zero(self):
        rng = np.random.default_rng(1)
        gaps = rng.exponential(1.0, 20000)
        assert burstiness_parameter(gaps) == pytest.approx(0.0, abs=0.05)

    def test_heavy_tail_positive(self):
        rng = np.random.default_rng(2)
        gaps = rng.pareto(1.1, 5000)
        assert burstiness_parameter(gaps) > 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            burstiness_parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            burstiness_parameter(np.array([1.0, -1.0]))

    def test_all_zero_gaps(self):
        assert burstiness_parameter(np.zeros(5)) == -1.0

    @given(st.lists(st.floats(0.0, 1e6), min_size=2, max_size=100))
    @settings(max_examples=60)
    def test_bounded(self, gaps):
        b = burstiness_parameter(gaps)
        assert -1.0 <= b <= 1.0


class TestPeakToMean:
    def test_constant_is_one(self):
        assert peak_to_mean(np.full(10, 3.0)) == 1.0

    def test_spike(self):
        counts = np.ones(100)
        counts[0] = 100
        assert peak_to_mean(counts) > 40

    def test_validation(self):
        with pytest.raises(ValueError):
            peak_to_mean(np.array([]))
        with pytest.raises(ValueError):
            peak_to_mean(np.zeros(3))


class TestAutocorrelation:
    def test_diurnal_series_slow_decay(self):
        t = np.arange(1440)
        series = 1 + 0.3 * np.sin(2 * np.pi * t / 1440)
        ac = rate_autocorrelation(series, 60)
        assert np.all(ac > 0.9)  # smooth trend: high at small lags

    def test_white_noise_decorrelates(self):
        rng = np.random.default_rng(3)
        ac = rate_autocorrelation(rng.normal(size=5000), 10)
        assert np.all(np.abs(ac) < 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            rate_autocorrelation(np.arange(10.0), 0)
        with pytest.raises(ValueError):
            rate_autocorrelation(np.arange(5.0), 10)
        with pytest.raises(ValueError):
            rate_autocorrelation(np.full(10, 2.0), 3)

    def test_faasrail_vs_poisson_contrast(self):
        """The Figure-8 contrast as a statistic: generated FaaSRail load
        has long-range autocorrelation, plain Poisson load does not."""
        from repro.baselines import plain_poisson_trace
        from repro.core import shrink
        from repro.loadgen import generate_request_trace
        from repro.traces import synthetic_azure_trace
        from repro.workloads import build_default_pool

        azure = synthetic_azure_trace(n_functions=800, seed=5)
        pool = build_default_pool()
        spec = shrink(azure, pool, max_rps=10.0, duration_minutes=60, seed=5)
        faasrail = generate_request_trace(spec, seed=5)
        poisson = plain_poisson_trace(10.0, 60, seed=5)
        ac_f = rate_autocorrelation(
            faasrail.per_minute_rate(3600).astype(float), 5)
        ac_p = rate_autocorrelation(
            poisson.per_minute_rate(3600).astype(float), 5)
        assert ac_f.mean() > ac_p.mean() + 0.2
