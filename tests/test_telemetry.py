"""Unit tests for the telemetry subsystem (ISSUE 3 tentpole).

Covers the metric primitives and registry, every exporter (JSONL schema,
Prometheus text escaping, console summary) including empty-registry and
single-sample edge cases, the activation lifecycle, the platform
telemetry tracer, and the drift monitor -- ending with the acceptance
scenario: a mis-mapped workload pool fires ``drift_warning`` events
while a faithful replay of the same seed emits none.
"""

import json

import numpy as np
import numpy.testing as npt
import pytest

from repro import telemetry
from repro.telemetry import (
    DriftMonitor,
    MetricsRegistry,
    NULL_REGISTRY,
    console_summary,
    prometheus_text,
    registry_snapshot,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.exporters import JSONL_SCHEMA_VERSION
from repro.telemetry.registry import default_edges


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def test_counter_monotone():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "help text")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(ValueError, match="only go up"):
        c.inc(-1)


def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("queue_depth")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13


def test_registry_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.counter("a", labels={"k": "v"}) is not reg.counter("a")
    assert reg.counter("a", labels={"k": "v"}) is \
        reg.counter("a", labels={"k": "v"})
    assert len(reg) == 2


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("x")
    with pytest.raises(ValueError, match="already registered"):
        reg.histogram("x", labels={"a": "b"})


def test_default_edges_geometric():
    edges = default_edges(1e-2, 1e2, per_decade=2)
    assert edges[0] == pytest.approx(1e-2)
    assert edges[-1] == pytest.approx(1e2)
    assert np.all(np.diff(edges) > 0)
    with pytest.raises(ValueError):
        default_edges(0.0, 1.0)


def test_histogram_bucketing_and_stats():
    h = MetricsRegistry().histogram(
        "lat", edges=np.array([1.0, 10.0, 100.0])
    )
    for v in (0.5, 5.0, 50.0, 500.0):
        h.observe(v)
    npt.assert_array_equal(h.counts, [1, 1, 1, 1])  # incl. overflow
    assert h.n == 4
    assert h.sum == pytest.approx(555.5)
    assert h.min == 0.5 and h.max == 500.0
    assert h.mean() == pytest.approx(555.5 / 4)


def test_histogram_observe_many_matches_observe():
    rng = np.random.default_rng(0)
    values = rng.lognormal(size=1000)
    a = MetricsRegistry().histogram("a")
    b = MetricsRegistry().histogram("b")
    for v in values:
        a.observe(v)
    b.observe_many(values)
    npt.assert_array_equal(a.counts, b.counts)
    assert a.n == b.n
    assert a.sum == pytest.approx(b.sum)
    assert a.min == b.min and a.max == b.max


def test_histogram_rejects_non_finite():
    h = MetricsRegistry().histogram("h")
    with pytest.raises(ValueError, match="finite"):
        h.observe(float("nan"))
    with pytest.raises(ValueError, match="finite"):
        h.observe_many([1.0, float("inf")])
    h.observe_many([])  # no-op, not an error
    assert h.n == 0


def test_histogram_single_sample_quantiles():
    h = MetricsRegistry().histogram("h")
    h.observe(3.0)
    for q in (0.0, 0.5, 0.99, 1.0):
        assert h.quantile(q) == pytest.approx(3.0)


def test_histogram_quantile_monotone_and_clamped():
    rng = np.random.default_rng(1)
    h = MetricsRegistry().histogram("h")
    values = rng.lognormal(mean=0.0, sigma=2.0, size=5000)
    h.observe_many(values)
    qs = np.linspace(0, 1, 21)
    ests = [h.quantile(q) for q in qs]
    assert all(b >= a for a, b in zip(ests, ests[1:]))
    assert ests[0] >= h.min and ests[-1] <= h.max
    # bucketed estimate tracks the exact quantile within a bucket width
    exact = np.quantile(values, 0.5)
    assert h.quantile(0.5) == pytest.approx(exact, rel=0.8)


def test_histogram_empty_quantile_raises():
    h = MetricsRegistry().histogram("h")
    with pytest.raises(ValueError, match="empty"):
        h.quantile(0.5)
    with pytest.raises(ValueError, match="empty"):
        h.mean()
    h.observe(1.0)
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        h.quantile(1.5)


def test_stage_timer_records_seconds():
    reg = MetricsRegistry()
    with reg.timer("stage_x", "busy work"):
        pass
    h = reg.histogram("stage_x_seconds")
    assert h.n == 1
    assert 0.0 <= h.max < 1.0


def test_events():
    reg = MetricsRegistry()
    reg.event("drift_warning", ks=0.5)
    reg.event("other")
    assert len(reg.events) == 2
    assert reg.events_of_kind("drift_warning") == [
        {"kind": "drift_warning", "ks": 0.5}
    ]


# ----------------------------------------------------------------------
# activation lifecycle
# ----------------------------------------------------------------------
def test_enable_disable_active():
    assert telemetry.active() is None
    reg = telemetry.enable()
    assert telemetry.active() is reg
    telemetry.disable()
    assert telemetry.active() is None


def test_use_scopes_and_restores():
    outer = telemetry.enable()
    inner = MetricsRegistry()
    with telemetry.use(inner):
        assert telemetry.active() is inner
    assert telemetry.active() is outer


def test_stage_is_shared_noop_when_disabled():
    a = telemetry.stage("x")
    b = telemetry.stage("y")
    assert a is b  # one shared singleton: no allocation per call site
    with a:
        pass
    telemetry.enable()
    assert telemetry.stage("x") is not a


def test_null_registry_accepts_everything():
    NULL_REGISTRY.counter("c").inc(5)
    NULL_REGISTRY.gauge("g").set(1)
    NULL_REGISTRY.histogram("h").observe_many([1.0, 2.0])
    with NULL_REGISTRY.timer("t"):
        pass
    NULL_REGISTRY.event("anything", x=1)
    assert NULL_REGISTRY.events == []


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", "total requests").inc(7)
    reg.counter("outcomes", "by outcome",
                labels={"outcome": "ok"}).inc(5)
    reg.gauge("horizon_s", "trace horizon").set(120.5)
    h = reg.histogram("lat_ms", "latency",
                      edges=np.array([1.0, 10.0, 100.0]))
    h.observe_many([0.5, 5.0, 5.0, 50.0, 500.0])
    reg.event("drift_warning", metric="duration_ms", ks=0.4, band=0.2,
              time_s=60.0)
    return reg


def test_jsonl_schema(tmp_path):
    path = write_jsonl(_populated_registry(), tmp_path / "t.jsonl")
    records = [json.loads(line) for line in
               path.read_text().strip().split("\n")]
    assert records[0] == {"type": "meta", "schema": JSONL_SCHEMA_VERSION,
                          "producer": "repro.telemetry"}
    by_type = {}
    for r in records:
        by_type.setdefault(r["type"], []).append(r)
    assert [c["name"] for c in by_type["counter"]] == \
        ["outcomes", "requests_total"]  # sorted by name
    assert by_type["counter"][0]["labels"] == {"outcome": "ok"}
    assert by_type["counter"][1]["value"] == 7
    [gauge] = by_type["gauge"]
    assert gauge["value"] == 120.5
    [hist] = by_type["histogram"]
    assert hist["count"] == 5
    assert hist["edges"] == [1.0, 10.0, 100.0]
    assert hist["bucket_counts"] == [1, 2, 1, 1]
    assert hist["min"] == 0.5 and hist["max"] == 500.0
    assert {"mean", "p50", "p90", "p99"} <= set(hist)
    [event] = by_type["event"]
    assert event["kind"] == "drift_warning" and event["ks"] == 0.4


def test_jsonl_deterministic(tmp_path):
    a = write_jsonl(_populated_registry(), tmp_path / "a.jsonl")
    b = write_jsonl(_populated_registry(), tmp_path / "b.jsonl")
    assert a.read_bytes() == b.read_bytes()


def test_jsonl_empty_registry(tmp_path):
    path = write_jsonl(MetricsRegistry(), tmp_path / "empty.jsonl")
    records = [json.loads(line) for line in
               path.read_text().strip().split("\n")]
    assert len(records) == 1 and records[0]["type"] == "meta"


def test_prometheus_text_format(tmp_path):
    text = prometheus_text(_populated_registry())
    lines = text.strip().split("\n")
    assert "# HELP outcomes_total by outcome" in lines
    assert "# TYPE outcomes_total counter" in lines
    assert 'outcomes_total{outcome="ok"} 5' in lines
    assert "requests_total 7" in lines  # _total not doubled
    assert "# TYPE horizon_s gauge" in lines
    assert "horizon_s 120.5" in lines
    # cumulative buckets + sum/count
    assert 'lat_ms_bucket{le="1"} 1' in lines
    assert 'lat_ms_bucket{le="10"} 3' in lines
    assert 'lat_ms_bucket{le="100"} 4' in lines
    assert 'lat_ms_bucket{le="+Inf"} 5' in lines
    assert "lat_ms_sum 560.5" in lines
    assert "lat_ms_count 5" in lines
    assert text.endswith("\n")
    path = write_prometheus(_populated_registry(), tmp_path / "t.prom")
    assert path.read_text() == text


def test_prometheus_escaping():
    reg = MetricsRegistry()
    reg.counter(
        "weird.name", 'help with \\ and\nnewline',
        labels={"path": 'a"b\\c\nd'},
    ).inc()
    text = prometheus_text(reg)
    # dots sanitised, help escapes \ and newline, labels also escape "
    assert "# HELP weird_name_total help with \\\\ and\\nnewline" in text
    assert 'weird_name_total{path="a\\"b\\\\c\\nd"} 1' in text


def test_prometheus_empty_registry():
    assert prometheus_text(MetricsRegistry()) == ""


def test_console_summary_populated():
    text = console_summary(_populated_registry())
    assert "telemetry summary" in text
    assert "requests_total = 7" in text
    assert "outcomes{outcome=ok} = 5" in text
    assert "horizon_s = 120.5" in text
    assert "lat_ms: n=5" in text
    assert "events: drift_warning=1" in text
    assert "DRIFT duration_ms ks=0.4000 > band=0.2000 at t=60.0s" in text


def test_console_summary_empty_and_single_sample():
    assert "(no metrics recorded)" in console_summary(MetricsRegistry())
    reg = MetricsRegistry()
    reg.histogram("h").observe(2.0)
    text = console_summary(reg)
    assert "h: n=1 mean=2" in text
    empty_hist = MetricsRegistry()
    empty_hist.histogram("h")
    assert "h: empty" in console_summary(empty_hist)


# ----------------------------------------------------------------------
# platform telemetry tracer
# ----------------------------------------------------------------------
def test_telemetry_tracer_counts_without_storing():
    from repro.platform import TelemetryTracer

    reg = MetricsRegistry()
    tracer = TelemetryTracer(reg)
    tracer.emit(0.0, "sandbox_created", 0, "w1")
    tracer.emit(1.0, "sandbox_created", 1, "w2")
    tracer.emit(2.0, "sandbox_reused", 0, "w1")
    tracer.emit(3.0, "sandbox_evicted", 1, "w2")
    assert len(tracer) == 4
    created = reg.counter("platform_events_total",
                          labels={"kind": "sandbox_created"})
    assert created.value == 2
    assert reg.gauge("platform_live_sandboxes").value == 1  # 2 up, 1 down
    with pytest.raises(ValueError, match="unknown event kind"):
        tracer.emit(0.0, "sandbox_teleported", 0, "w")


def test_telemetry_tracer_drives_simulator():
    from repro.platform import (
        FaaSCluster,
        TelemetryTracer,
        WorkloadProfile,
    )

    reg = MetricsRegistry()
    backend = FaaSCluster(
        {"w": WorkloadProfile("w", runtime_ms=10.0, memory_mb=128.0)},
        n_nodes=2,
        tracer=TelemetryTracer(reg),
    )
    for i in range(20):
        backend.invoke(i * 0.001, "w")
    backend.drain()
    assert reg.counter("platform_events_total",
                       labels={"kind": "sandbox_created"}).value > 0


def test_simulator_drain_gauges():
    from repro.platform import FaaSCluster, WorkloadProfile

    reg = telemetry.enable()
    backend = FaaSCluster(
        {"w": WorkloadProfile("w", runtime_ms=5.0, memory_mb=64.0)},
        n_nodes=3,
    )
    backend.invoke(0.0, "w")
    backend.drain()
    assert reg.gauge("platform_nodes").value == 3
    assert reg.gauge("platform_completed_invocations").value == 1
    assert reg.gauge("platform_dropped_requests").value == 0


# ----------------------------------------------------------------------
# drift monitor
# ----------------------------------------------------------------------
def _lognormal_cdf(seed=0, n=20_000):
    from repro.stats.ecdf import EmpiricalCDF

    rng = np.random.default_rng(seed)
    return EmpiricalCDF.from_samples(rng.lognormal(np.log(100), 1.0, n))


def test_drift_monitor_validates_params():
    target = _lognormal_cdf()
    with pytest.raises(ValueError, match="band"):
        DriftMonitor(target, band=0.0)
    with pytest.raises(ValueError, match="window"):
        DriftMonitor(target, window=1)
    with pytest.raises(ValueError, match="min_samples"):
        DriftMonitor(target, window=10, min_samples=11)


def test_drift_monitor_faithful_stream_quiet():
    target = _lognormal_cdf()
    monitor = DriftMonitor(target, band=0.15, window=512)
    rng = np.random.default_rng(1)
    monitor.observe_many(rng.lognormal(np.log(100), 1.0, 4096))
    monitor.flush()
    assert monitor.n_windows == 8
    assert monitor.max_ks < 0.15
    assert monitor.warnings == []


def test_drift_monitor_shifted_stream_fires():
    target = _lognormal_cdf()
    monitor = DriftMonitor(target, band=0.15, window=512)
    rng = np.random.default_rng(2)
    # x3 runtime shift: what a mis-mapped pool looks like
    times = np.arange(4096) * 0.1
    monitor.observe_many(3.0 * rng.lognormal(np.log(100), 1.0, 4096),
                         times)
    assert len(monitor.warnings) == 8  # every window trips
    w = monitor.warnings[0]
    assert w["kind"] == "drift_warning"
    assert w["ks"] > 0.15 and w["band"] == 0.15
    assert w["time_s"] == pytest.approx(51.1)  # last sample of window 0
    assert monitor.max_ks == max(x["ks"] for x in monitor.warnings)


def test_drift_monitor_observe_matches_observe_many():
    target = _lognormal_cdf()
    rng = np.random.default_rng(3)
    values = 2.0 * rng.lognormal(np.log(100), 1.0, 1500)
    a = DriftMonitor(target, band=0.1, window=256)
    b = DriftMonitor(target, band=0.1, window=256)
    for i, v in enumerate(values):
        a.observe(v, i * 1.0)
    b.observe_many(values, np.arange(values.size, dtype=np.float64))
    a.flush()
    b.flush()
    assert a.n_windows == b.n_windows
    assert a.last_ks == pytest.approx(b.last_ks)
    assert [w["ks"] for w in a.warnings] == \
        pytest.approx([w["ks"] for w in b.warnings])


def test_drift_monitor_flush_partial_window():
    target = _lognormal_cdf()
    monitor = DriftMonitor(target, band=0.05, window=512, min_samples=64)
    monitor.observe_many(np.full(63, 1e6))  # below min_samples: ignored
    monitor.flush()
    assert monitor.n_windows == 0 and monitor.warnings == []
    monitor.observe_many(np.full(64, 1e6))
    monitor.flush()
    assert monitor.n_windows == 1 and len(monitor.warnings) == 1


def test_drift_monitor_mirrors_into_active_registry():
    target = _lognormal_cdf()
    reg = telemetry.enable()
    monitor = DriftMonitor(target, band=0.1, window=128)
    monitor.observe_many(np.full(128, 1e6))
    assert len(reg.events_of_kind("drift_warning")) == 1
    assert reg.counter("drift_warnings_total",
                       labels={"metric": "duration_ms"}).value == 1
    assert reg.gauge("drift_ks",
                     labels={"metric": "duration_ms"}).value > 0.1


def test_drift_monitor_noise_floor_and_summary():
    monitor = DriftMonitor(_lognormal_cdf(), band=0.2, window=1024)
    from repro.stats.distance import dkw_band

    assert monitor.noise_floor() == pytest.approx(dkw_band(1024, 0.01))
    assert monitor.band > monitor.noise_floor()
    s = monitor.summary()
    assert s["n_observed"] == 0 and s["last_ks"] is None


# ----------------------------------------------------------------------
# acceptance: mis-mapped pool fires during replay, faithful run is quiet
# ----------------------------------------------------------------------
class _NullBackend:
    """Accepts everything instantly; keeps replay overhead at zero."""

    def invoke(self, timestamp_s, workload_id):
        pass

    def drain(self):
        return []


def _spec_and_trace(seed=0):
    from repro.core import ShrinkRay
    from repro.loadgen import generate_request_trace
    from repro.traces import synthetic_azure_trace
    from repro.workloads import build_default_pool

    trace = synthetic_azure_trace(n_functions=600, seed=seed)
    spec = ShrinkRay().run(trace, build_default_pool(), max_rps=6.0,
                           duration_minutes=8, seed=seed)
    return spec, generate_request_trace(spec, seed=seed)


def test_replay_drift_acceptance():
    """The ISSUE 3 acceptance scenario, end to end through replay()."""
    from dataclasses import replace as dc_replace

    from repro.loadgen import replay

    spec, req = _spec_and_trace(seed=0)
    target = spec.invocation_duration_cdf()

    # faithful replay, same seed: no warnings
    reg = telemetry.enable()
    quiet = DriftMonitor(target, band=0.2, window=512)
    replay(req, _NullBackend(), drift=quiet)
    assert quiet.n_observed == req.n_requests
    assert quiet.n_windows > 0
    assert quiet.warnings == [], (
        f"faithful replay drifted: max KS {quiet.max_ks:.4f}"
    )
    assert reg.events_of_kind("drift_warning") == []
    telemetry.disable()

    # mis-mapped pool: every runtime off by x4 -- the drift the monitor
    # exists to catch -- fires during the run and lands in the registry
    bad_req = dc_replace(req, runtimes_ms=req.runtimes_ms * 4.0)
    reg = telemetry.enable()
    loud = DriftMonitor(target, band=0.2, window=512)
    replay(bad_req, _NullBackend(), drift=loud)
    assert len(loud.warnings) > 0
    assert loud.max_ks > 0.2
    events = reg.events_of_kind("drift_warning")
    assert len(events) == len(loud.warnings)
    assert reg.counter("replay_requests_total").value == req.n_requests


def test_resilient_replay_observes_drift_online():
    from dataclasses import replace as dc_replace

    from repro.loadgen import RetryPolicy, replay

    spec, req = _spec_and_trace(seed=1)
    bad_req = dc_replace(req, runtimes_ms=req.runtimes_ms * 4.0)
    monitor = DriftMonitor(spec.invocation_duration_cdf(), band=0.2,
                           window=512)
    result = replay(bad_req, _NullBackend(),
                    retry=RetryPolicy(max_attempts=2), drift=monitor)
    assert result.outcomes is not None
    assert monitor.n_observed == req.n_requests
    assert len(monitor.warnings) > 0
