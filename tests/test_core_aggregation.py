"""Tests for trace-function aggregation (paper section 3.1.2, Figure 4)."""

import numpy as np
import pytest

from repro.core import aggregate_functions
from repro.traces import Trace, invocation_duration_cdf, synthetic_azure_trace


def trace_with(durations, per_minute):
    n = len(durations)
    return Trace(
        name="t",
        function_ids=np.array([f"f{i}" for i in range(n)]),
        app_ids=np.array(["a"] * n),
        durations_ms=np.array(durations, dtype=float),
        per_minute=np.asarray(per_minute, dtype=np.int64),
    )


class TestAggregation:
    def test_groups_same_quantized_duration(self):
        t = trace_with([100.2, 99.8, 250.0],
                       [[5, 0], [1, 1], [0, 3]])
        agg, audit = aggregate_functions(t, quantize_ms=1.0)
        assert agg.n_functions == 2
        assert audit.n_original == 3
        assert audit.n_aggregated == 2

    def test_per_minute_rows_summed(self):
        t = trace_with([100.0, 100.0], [[5, 2], [1, 1]])
        agg, _ = aggregate_functions(t)
        np.testing.assert_array_equal(agg.per_minute, [[6, 3]])

    def test_total_invocations_preserved(self):
        t = synthetic_azure_trace(n_functions=2000, seed=5)
        agg, _ = aggregate_functions(t)
        assert agg.total_invocations == t.total_invocations

    def test_weighted_duration_cdf_preserved(self):
        """Aggregation must not move the invocations' duration distribution."""
        t = synthetic_azure_trace(n_functions=2000, seed=6)
        agg, _ = aggregate_functions(t)
        before = invocation_duration_cdf(t)
        after = invocation_duration_cdf(agg)
        # weighted means agree to quantisation error
        assert after.mean() == pytest.approx(before.mean(), rel=0.01)

    def test_group_duration_is_invocation_weighted_mean(self):
        t = trace_with([100.4, 100.0], [[3, 0], [1, 0]])
        agg, _ = aggregate_functions(t)
        assert agg.durations_ms[0] == pytest.approx(
            (100.4 * 3 + 100.0 * 1) / 4
        )

    def test_reduces_function_count_substantially(self):
        t = synthetic_azure_trace(n_functions=5000, seed=7)
        agg, audit = aggregate_functions(t)
        # ~50K -> ~12.7K in the paper; proportionally fewer groups here
        assert agg.n_functions < t.n_functions
        assert audit.group_sizes.sum() == t.n_functions

    def test_popularity_changes_tiny(self):
        """Figure 4: the vast majority of popularity changes are ~0."""
        t = synthetic_azure_trace(n_functions=4000, seed=8)
        agg, audit = aggregate_functions(t)
        changes, probs = audit.popularity_change_series()
        assert changes.size == agg.n_functions
        # >=99% of super-Functions shift popularity by < 1 percentage point
        below = probs[np.searchsorted(changes, 0.01, side="right") - 1]
        assert below >= 0.99

    def test_quantize_knob(self):
        t = trace_with([100.2, 100.4], [[1, 0], [1, 0]])
        agg_coarse, _ = aggregate_functions(t, quantize_ms=1.0)
        assert agg_coarse.n_functions == 1
        agg_fine, _ = aggregate_functions(t, quantize_ms=0.1)
        assert agg_fine.n_functions == 2

    def test_rejects_bad_quantize(self):
        t = trace_with([1.0], [[1]])
        with pytest.raises(ValueError, match="quantize_ms"):
            aggregate_functions(t, quantize_ms=0.0)

    def test_rejects_empty_invocations(self):
        t = trace_with([1.0, 2.0], [[0], [0]])
        with pytest.raises(ValueError, match="no invocations"):
            aggregate_functions(t)

    def test_sub_quantum_durations_keep_positive_key(self):
        t = trace_with([0.2, 0.3], [[1], [1]])
        agg, _ = aggregate_functions(t, quantize_ms=1.0)
        assert agg.n_functions == 1
        assert agg.durations_ms[0] > 0
