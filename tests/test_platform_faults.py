"""Tests for the fault-injection subsystem (repro.platform.faults)."""

import numpy as np
import pytest

from repro.loadgen import RequestTrace, RetryPolicy, replay
from repro.platform import (
    CrashHook,
    FaaSCluster,
    FaultProfile,
    FaultyBackend,
    InvocationFault,
    MemoryExhaustedFault,
    NodeOutageFault,
    OutageWindow,
    PlatformTracer,
    WorkloadProfile,
    iter_trace_slabs,
    lifecycle_summary,
    summarize,
)


def make_trace(n=500, horizon=60.0, seed=0, wid="w"):
    ts = np.sort(np.random.default_rng(seed).uniform(0, horizon, n))
    return RequestTrace(ts, np.array([wid] * n), np.array([""] * n),
                        np.full(n, 10.0), np.array(["f"] * n))


def make_cluster(**kwargs):
    return FaaSCluster({"w": WorkloadProfile("w", 10.0, 128.0)},
                       n_nodes=2, **kwargs)


class _CountingBackend:
    def __init__(self):
        self.invocations = 0

    def invoke(self, timestamp_s, workload_id):
        self.invocations += 1

    def drain(self):
        return []


class TestFaultProfile:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="probability"):
            FaultProfile(error_rate=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultProfile(crash_rate={"w": -0.1})
        with pytest.raises(ValueError, match="latency_spike_ms"):
            FaultProfile(latency_spike_ms=-1.0)

    def test_per_workload_rates_with_wildcard(self):
        p = FaultProfile(error_rate={"hot": 0.5, "*": 0.1})
        assert p.rate("error_rate", "hot") == 0.5
        assert p.rate("error_rate", "other") == 0.1
        p2 = FaultProfile(error_rate={"hot": 0.5})
        assert p2.rate("error_rate", "other") == 0.0

    def test_outage_validation(self):
        with pytest.raises(ValueError, match="start_s"):
            OutageWindow(5.0, 5.0)
        with pytest.raises(ValueError, match="failure_prob"):
            OutageWindow(0.0, 1.0, failure_prob=0.0)

    def test_json_round_trip(self, tmp_path):
        p = FaultProfile(error_rate={"w": 0.2}, crash_rate=0.01,
                         outages=[OutageWindow(10.0, 20.0, 0.5)], seed=9)
        path = tmp_path / "faults.json"
        p.to_json(path)
        q = FaultProfile.from_json(path)
        assert q == p

    def test_json_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultProfile.from_json(path)
        path.write_text('{"bogus_field": 1}')
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultProfile.from_json(path)


class TestFaultyBackend:
    def test_injects_errors_at_roughly_the_configured_rate(self):
        inner = _CountingBackend()
        fb = FaultyBackend(inner, FaultProfile(error_rate=0.2, seed=1))
        failures = 0
        for i in range(2000):
            try:
                fb.invoke(float(i), "w")
            except InvocationFault:
                failures += 1
        assert failures == pytest.approx(400, rel=0.2)
        assert inner.invocations == 2000 - failures
        assert fb.injected["error"] == failures

    def test_deterministic_under_fixed_seed(self):
        def fault_sequence(seed):
            fb = FaultyBackend(_CountingBackend(),
                               FaultProfile(error_rate=0.1,
                                            crash_rate=0.05, seed=seed))
            out = []
            for i in range(500):
                try:
                    fb.invoke(float(i), "w")
                    out.append("ok")
                except Exception as exc:
                    out.append(type(exc).__name__)
            return out

        assert fault_sequence(3) == fault_sequence(3)
        assert fault_sequence(3) != fault_sequence(4)

    def test_outage_window_fails_requests_inside_it(self):
        fb = FaultyBackend(
            _CountingBackend(),
            FaultProfile(outages=[OutageWindow(10.0, 20.0)]),
        )
        fb.invoke(5.0, "w")
        with pytest.raises(NodeOutageFault):
            fb.invoke(15.0, "w")
        fb.invoke(25.0, "w")

    def test_memory_rejection_is_retryable(self):
        fb = FaultyBackend(_CountingBackend(),
                           FaultProfile(memory_rejection_rate=1.0))
        with pytest.raises(MemoryExhaustedFault) as exc_info:
            fb.invoke(0.0, "w")
        assert exc_info.value.retryable

    def test_latency_spikes_rewrite_simulator_records(self):
        trace = make_trace(n=200)
        profile = FaultProfile(latency_spike_rate=0.3,
                               latency_spike_ms=500.0, seed=2)

        def latencies(with_spikes):
            backend = make_cluster()
            if with_spikes:
                backend = FaultyBackend(backend, profile)
            return np.sort(replay(trace, backend).latencies_ms())

        base, spiked = latencies(False), latencies(True)
        assert spiked.size == base.size
        # spiked run strictly adds latency to a subset of requests
        assert spiked.sum() > base.sum() + 0.3 * 200 * 500.0 * 0.5
        assert spiked.max() >= base.max() + 499.0

    def test_spikes_skip_backends_without_records(self):
        fb = FaultyBackend(_CountingBackend(),
                           FaultProfile(latency_spike_rate=1.0))
        fb.invoke(0.0, "w")
        assert fb.drain() == []

    def test_tracer_sees_injected_faults(self):
        tracer = PlatformTracer()
        fb = FaultyBackend(_CountingBackend(),
                           FaultProfile(error_rate=1.0), tracer=tracer)
        with pytest.raises(InvocationFault):
            fb.invoke(0.0, "w")
        assert len(tracer.of_kind("fault_injected")) == 1

    def test_delegates_inner_attributes(self):
        cluster = make_cluster()
        fb = FaultyBackend(cluster, FaultProfile())
        assert fb.records is cluster.records
        assert fb.clock_s == 0.0

    def test_gauntlet_draws_identically_scalar_bulk_chunked(self):
        """The fault gauntlet consumes the same RNG stream no matter how
        requests are submitted, so injected counts, spike rewrites, and
        the simulator records are byte-identical across modes."""
        trace = make_trace(n=400, horizon=120.0, seed=3)
        profile = FaultProfile(latency_spike_rate=0.3,
                               latency_spike_ms=250.0, seed=11)

        def run(mode):
            fb = FaultyBackend(make_cluster(), profile)
            ts, wids = trace.timestamps_s, list(trace.workload_ids)
            if mode == "scalar":
                for t, w in zip(ts.tolist(), wids):
                    fb.invoke(t, w)
            elif mode == "bulk":
                fb.invoke_many(ts, wids)
            else:
                fb.invoke_chunked(iter_trace_slabs(ts, wids, chunk_rows=7))
            return (fb._rng.bit_generator.state, dict(fb.injected),
                    fb.drain())

        state_s, injected_s, records_s = run("scalar")
        for mode in ("bulk", "chunked"):
            state, injected, records = run(mode)
            assert state == state_s, mode
            assert injected == injected_s, mode
            assert records == records_s, mode
        assert injected_s["spike"] > 0

    def test_chunked_cannot_bypass_gauntlet(self):
        """invoke_chunked must inject even though the inner cluster also
        defines invoke_chunked (no __getattr__ forwarding)."""
        fb = FaultyBackend(make_cluster(), FaultProfile(error_rate=1.0))
        with pytest.raises(InvocationFault):
            fb.invoke_chunked(iter_trace_slabs(
                np.array([0.0]), ["w"], chunk_rows=1))
        assert fb.injected["error"] == 1


class TestSimulatorCrashHook:
    def test_crashes_mark_records_not_ok_and_free_memory(self):
        trace = make_trace(n=2000, horizon=600.0)
        cluster = make_cluster(fault_hook=CrashHook(0.2, seed=5))
        result = replay(trace, cluster)
        ok = np.array([r.ok for r in result.records])
        assert result.n_requests == 2000
        assert 0.65 < ok.mean() < 0.9
        # crashed invocations end early (no full service time)
        crashed = [r for r in result.records if not r.ok]
        assert crashed
        assert all(r.service_ms <= 10.0 for r in crashed)
        # crashed sandboxes are destroyed: memory fully reclaimed
        cluster.drain()
        assert all(n.used_memory_mb == pytest.approx(0.0, abs=1e-9)
                   for n in cluster.nodes)

    def test_crashes_emit_lifecycle_events(self):
        tracer = PlatformTracer()
        trace = make_trace(n=500, horizon=120.0)
        cluster = make_cluster(fault_hook=CrashHook(0.3, seed=6),
                               tracer=tracer)
        replay(trace, cluster)
        summary = lifecycle_summary(tracer)
        assert summary["sandbox_crashed"] > 0
        # a crashed sandbox is never reused; creations cover crashes
        assert summary["sandbox_created"] >= summary["sandbox_crashed"]

    def test_hook_determinism(self):
        def run(seed):
            cluster = make_cluster(fault_hook=CrashHook(0.2, seed=seed))
            result = replay(make_trace(n=500), cluster)
            return [r.ok for r in result.records]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_summarize_reports_ok_fraction(self):
        cluster = make_cluster(fault_hook=CrashHook(0.5, seed=1))
        result = replay(make_trace(n=300), cluster)
        s = summarize(result.records)
        assert 0.0 < s["ok_fraction"] < 1.0


class TestFaultyBackendEndToEnd:
    def test_acceptance_five_percent_errors_three_retries(self):
        """The ISSUE's acceptance scenario: 5% errors + 3-attempt
        exponential backoff completes, counts sum to n, and reruns with
        the same seed are byte-identical."""
        trace = make_trace(n=3000, horizon=300.0)

        def run():
            backend = FaultyBackend(
                make_cluster(), FaultProfile(error_rate=0.05, seed=11)
            )
            return replay(trace, backend,
                          retry=RetryPolicy(max_attempts=3, seed=11))

        r1, r2 = run(), run()
        counts = r1.outcome_counts()
        assert sum(counts.values()) == trace.n_requests
        assert counts["retried"] > 0
        assert counts["ok"] + counts["retried"] == trace.n_requests
        assert r1.outcomes.tobytes() == r2.outcomes.tobytes()
        assert r1.attempts.tobytes() == r2.attempts.tobytes()
