"""Tests for the supervised open-loop load service."""

import functools
import json
import time
import zlib

import numpy as np
import pytest

from repro.loadgen import RequestTrace
from repro.loadgen.resilience import OUTCOME_CODES, RetryPolicy
from repro.loadgen.service import (
    BreakerSpec,
    CrashPoint,
    ServiceConfig,
    ServiceError,
    ServiceFaultPlan,
    _reconcile,
    run_service,
)


def make_trace(n=200, horizon=60.0, seed=0):
    ts = np.sort(np.random.default_rng(seed).uniform(0, horizon, n))
    wids = np.array([f"w{i % 5}" for i in range(n)])
    return RequestTrace(ts, wids, np.array([""] * n),
                        np.full(n, 10.0), np.array(["f"] * n))


class _NullBackend:
    def invoke(self, timestamp_s, workload_id):
        pass

    def drain(self):
        return []


class _KeyedFlakyBackend:
    """Fails deterministically as a pure function of the request.

    Keyed on crc32 (never Python's per-process-randomised ``hash``), so
    every worker process -- including one resuming a shard after a crash
    -- sees exactly the same failures for the same requests.
    """

    def __init__(self, modulus=7):
        self.modulus = modulus

    def invoke(self, timestamp_s, workload_id):
        key = zlib.crc32(f"{timestamp_s:.9f}:{workload_id}".encode())
        if key % self.modulus == 0:
            raise RuntimeError("keyed flake")

    def drain(self):
        return []


class _SlowBackend:
    def __init__(self, delay_s=0.02):
        self.delay_s = delay_s

    def invoke(self, timestamp_s, workload_id):
        time.sleep(self.delay_s)

    def drain(self):
        return []


class _BrokenBackend:
    def __init__(self):
        raise RuntimeError("factory always explodes")


# module-level factories: they must pickle into spawned workers
def _null_factory():
    return _NullBackend()


def _flaky_factory(modulus=7):
    return _KeyedFlakyBackend(modulus=modulus)


def _slow_factory(delay_s=0.02):
    return _SlowBackend(delay_s=delay_s)


def _broken_factory():
    return _BrokenBackend()


class TestValidation:
    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError, match="workers"):
            ServiceConfig(workers=-1)
        with pytest.raises(ValueError, match="speed"):
            ServiceConfig(speed=0.0)
        with pytest.raises(ValueError, match="max_lag_s"):
            ServiceConfig(max_lag_s=0.0)
        with pytest.raises(ValueError, match="heartbeat_timeout_s"):
            ServiceConfig(heartbeat_timeout_s=0.0)
        with pytest.raises(ValueError, match="cadences"):
            ServiceConfig(checkpoint_every=0)

    def test_crash_point_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="sigkill"):
            CrashPoint(shard=0, at_index=0, mode="segfault")

    def test_fault_plan_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="error_rate"):
            ServiceFaultPlan(error_rate=1.5)

    def test_fault_plan_draws_are_keyed_not_sequential(self):
        plan = ServiceFaultPlan(error_rate=0.5, seed=3)
        first = [plan.should_error(i, 1) for i in range(50)]
        again = [plan.should_error(i, 1) for i in range(50)]
        assert first == again
        assert any(first) and not all(first)

    def test_empty_schedule_rejected(self, tmp_path):
        # RequestTrace itself forbids empty traces; guard the service's
        # own check with a trace-shaped stand-in
        class _Empty:
            n_requests = 0
            timestamps_s = np.array([])
            workload_ids = np.array([])

        with pytest.raises(ServiceError, match="no requests"):
            run_service(_Empty(), _null_factory, service_dir=tmp_path)


class TestDeterminism:
    """Acceptance: the reconciled ledger is byte-identical across worker
    counts and across crash/no-crash runs for a fixed seed."""

    def test_ledger_identical_across_worker_counts(self, tmp_path):
        trace = make_trace(n=300)
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.001, seed=2)
        digests = {}
        for workers in (0, 1, 2, 4):
            result = run_service(
                trace, _flaky_factory,
                service_dir=tmp_path / f"w{workers}",
                config=ServiceConfig(workers=workers),
                retry=retry,
            )
            assert result.coverage.ok
            digests[workers] = result.coverage.ledger_sha256
        assert len(set(digests.values())) == 1

    def test_outcomes_match_inline_reference(self, tmp_path):
        trace = make_trace(n=120)
        inline = run_service(trace, _flaky_factory,
                             service_dir=tmp_path / "inline",
                             config=ServiceConfig(workers=0))
        multi = run_service(trace, _flaky_factory,
                            service_dir=tmp_path / "multi",
                            config=ServiceConfig(workers=2))
        assert inline.outcomes.tobytes() == multi.outcomes.tobytes()
        assert inline.attempts.tobytes() == multi.attempts.tobytes()
        counts = inline.outcome_counts()
        assert counts["error"] > 0          # the flaky backend does bite
        assert sum(counts.values()) == trace.n_requests

    def test_resume_skips_completed_shards(self, tmp_path):
        trace = make_trace(n=80)
        first = run_service(trace, _null_factory, service_dir=tmp_path,
                            config=ServiceConfig(workers=0))
        again = run_service(trace, _null_factory, service_dir=tmp_path,
                            config=ServiceConfig(workers=0), resume=True)
        assert (first.coverage.ledger_sha256
                == again.coverage.ledger_sha256)
        assert all(s["resumed"] == 1
                   for s in again.coverage.per_shard)


class TestCrashRecovery:
    def test_sigkill_mid_shard_restarts_and_matches_reference(
            self, tmp_path):
        """Satellite: SIGKILL a worker mid-shard; the restarted shard
        resumes from its checkpoint and the merged ledger is
        byte-identical to an uninterrupted run."""
        trace = make_trace(n=200)
        retry = RetryPolicy(max_attempts=2, base_delay_s=0.001, seed=1)
        reference = run_service(
            trace, _flaky_factory, service_dir=tmp_path / "ref",
            config=ServiceConfig(workers=1), retry=retry,
        )
        plan = ServiceFaultPlan(worker_crash=(
            CrashPoint(shard=1, at_index=30, mode="sigkill"),
        ))
        crashed = run_service(
            trace, _flaky_factory, service_dir=tmp_path / "crash",
            config=ServiceConfig(workers=2, checkpoint_every=5,
                                 heartbeat_timeout_s=5.0),
            retry=retry, fault_plan=plan,
        )
        assert crashed.coverage.ok
        assert crashed.coverage.restarts >= 1
        assert (crashed.coverage.ledger_sha256
                == reference.coverage.ledger_sha256)
        assert (crashed.outcomes.tobytes()
                == reference.outcomes.tobytes())
        assert (crashed.attempts.tobytes()
                == reference.attempts.tobytes())

    def test_hung_worker_is_killed_on_heartbeat_timeout(self, tmp_path):
        trace = make_trace(n=160)
        reference = run_service(trace, _null_factory,
                                service_dir=tmp_path / "ref",
                                config=ServiceConfig(workers=0))
        plan = ServiceFaultPlan(worker_crash=(
            CrashPoint(shard=0, at_index=3, mode="hang"),
        ))
        hung = run_service(
            trace, _null_factory, service_dir=tmp_path / "hang",
            config=ServiceConfig(workers=2, checkpoint_every=5,
                                 heartbeat_timeout_s=1.0),
            fault_plan=plan,
        )
        assert hung.coverage.ok
        assert hung.coverage.heartbeat_misses >= 1
        assert hung.coverage.restarts >= 1
        assert (hung.coverage.ledger_sha256
                == reference.coverage.ledger_sha256)

    def test_restart_budget_exhaustion_raises(self, tmp_path):
        trace = make_trace(n=40)
        with pytest.raises(ServiceError, match="restart budget"):
            run_service(
                trace, _broken_factory, service_dir=tmp_path,
                config=ServiceConfig(workers=1,
                                     max_restarts_per_shard=1,
                                     service_timeout_s=60.0),
            )

    def test_service_deadline_enforced(self, tmp_path):
        trace = make_trace(n=40)
        with pytest.raises(ServiceError, match="deadline"):
            run_service(
                trace,
                functools.partial(_slow_factory, delay_s=0.05),
                service_dir=tmp_path,
                config=ServiceConfig(workers=1, max_shards=2,
                                     service_timeout_s=0.3),
            )


class TestCoverageReport:
    def test_report_proves_exactly_once_accounting(self, tmp_path):
        trace = make_trace(n=150)
        result = run_service(trace, _flaky_factory,
                             service_dir=tmp_path,
                             config=ServiceConfig(workers=0),
                             retry=RetryPolicy(max_attempts=2,
                                               base_delay_s=0.001))
        cov = result.coverage
        assert cov.ok and cov.accounted
        assert sum(cov.outcome_counts.values()) == cov.n_scheduled
        assert cov.unaccounted == []
        # the shard list partitions [0, n) exactly
        assert cov.per_shard[0]["lo"] == 0
        assert cov.per_shard[-1]["hi"] == trace.n_requests
        for prev, cur in zip(cov.per_shard, cov.per_shard[1:]):
            assert cur["lo"] == prev["hi"]

    def test_report_written_as_json(self, tmp_path):
        trace = make_trace(n=50)
        result = run_service(trace, _null_factory, service_dir=tmp_path,
                             config=ServiceConfig(workers=0))
        data = json.loads((tmp_path / "coverage.json").read_text())
        assert data["ok"] is True
        assert data["ledger_sha256"] == result.coverage.ledger_sha256
        assert data["outcome_counts"]["ok"] == 50

    def test_missing_shard_payload_is_flagged_not_hidden(self):
        trace = make_trace(n=40)
        bounds = [(0, 20), (20, 40)]
        payload = {
            "outcomes": np.zeros(20, np.uint8),
            "attempts": np.ones(20, np.int32),
            "lag_ms": np.zeros(20), "records": [],
            "shed_overload": 0, "shed_breaker": 0, "resumed": 0,
        }
        stats = {"restarts": 0, "heartbeat_misses": 0,
                 "worker_errors": 0}
        partial = _reconcile(trace, bounds, {0: payload}, stats,
                             n_workers=1, wall_clock_s=0.0, pace=False)
        assert not partial.coverage.accounted
        assert not partial.coverage.ok
        assert partial.coverage.unaccounted[0] == 20


class TestSheddingAndBreaker:
    def test_overload_sheds_explicitly_at_finite_speed(self, tmp_path):
        # 30 requests in a 0.3 s window against a 20 ms/request backend:
        # the dispatcher must fall behind schedule and shed once lag
        # exceeds the admission bound.
        n = 30
        ts = np.linspace(0.0, 0.3, n)
        trace = RequestTrace(ts, np.array(["w"] * n),
                             np.array([""] * n), np.full(n, 1.0),
                             np.array(["f"] * n))
        result = run_service(
            trace, _slow_factory, service_dir=tmp_path,
            config=ServiceConfig(workers=0, speed=1.0, max_lag_s=0.05,
                                 max_shards=1),
        )
        counts = result.outcome_counts()
        assert counts["shed"] > 0
        assert result.coverage.shed_overload == counts["shed"]
        assert result.coverage.ok  # shed requests are still accounted
        assert result.coverage.dispatch_lag_ms["max"] > 50.0

    def test_breaker_spec_sheds_per_shard(self, tmp_path):
        trace = make_trace(n=100)
        result = run_service(
            trace, functools.partial(_flaky_factory, 1),  # always fails
            service_dir=tmp_path,
            config=ServiceConfig(workers=0, max_shards=2),
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerSpec(failure_threshold=3,
                                reset_timeout_s=1000.0),
        )
        counts = result.outcome_counts()
        assert counts["shed"] > 0
        assert counts["shed"] + counts["error"] == 100
        assert result.coverage.shed_breaker == counts["shed"]

    def test_injected_service_faults_are_retried(self, tmp_path):
        trace = make_trace(n=100)
        result = run_service(
            trace, _null_factory, service_dir=tmp_path,
            config=ServiceConfig(workers=0),
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.0001,
                              seed=9),
            fault_plan=ServiceFaultPlan(error_rate=0.3, seed=9),
        )
        counts = result.outcome_counts()
        assert counts["retried"] > 0
        assert result.coverage.ok


class TestTelemetryAndReplayView:
    def test_service_counters_recorded(self, tmp_path):
        from repro.telemetry import MetricsRegistry, use

        trace = make_trace(n=120)
        registry = MetricsRegistry()
        plan = ServiceFaultPlan(worker_crash=(
            CrashPoint(shard=0, at_index=2, mode="sigkill"),
        ))
        with use(registry):
            run_service(
                trace, _null_factory, service_dir=tmp_path,
                config=ServiceConfig(workers=2, checkpoint_every=5,
                                     heartbeat_timeout_s=5.0),
                fault_plan=plan,
            )
        counters = {c.name: c.value for c in registry.counters()}
        assert counters["service_shards_total"] > 0
        assert counters["service_restarts_total"] >= 1
        gauges = {g.name: g.value for g in registry.gauges()}
        assert gauges["service_workers"] == 2.0

    def test_shed_counters_and_lag_histogram_recorded(self, tmp_path):
        from repro.telemetry import MetricsRegistry, use

        # paced overload: a 20 ms backend against ~10 ms spacing must
        # blow the 50 ms admission bound and shed
        n = 20
        ts = np.linspace(0.0, 0.2, n)
        trace = RequestTrace(ts, np.array(["w"] * n),
                             np.array([""] * n), np.full(n, 1.0),
                             np.array(["f"] * n))
        registry = MetricsRegistry()
        with use(registry):
            run_service(
                trace, _slow_factory, service_dir=tmp_path / "overload",
                config=ServiceConfig(workers=0, speed=1.0,
                                     max_lag_s=0.05, max_shards=1),
            )
        shed = {c.labels.get("reason"): c.value
                for c in registry.counters()
                if c.name == "service_shed_total"}
        assert shed.get("overload", 0) >= 1
        assert any(h.name == "service_dispatch_lag_ms"
                   for h in registry.histograms())

        breaker_reg = MetricsRegistry()
        with use(breaker_reg):
            run_service(
                trace, _AlwaysFailBackend,
                service_dir=tmp_path / "breaker",
                config=ServiceConfig(workers=0, max_shards=1),
                breaker=BreakerSpec(failure_threshold=1,
                                    reset_timeout_s=10_000.0),
            )
        shed = {c.labels.get("reason"): c.value
                for c in breaker_reg.counters()
                if c.name == "service_shed_total"}
        assert shed.get("breaker", 0) >= 1

    def test_as_replay_result_feeds_outcome_summary(self, tmp_path):
        from repro.platform import outcome_summary

        trace = make_trace(n=60)
        result = run_service(trace, _flaky_factory,
                             service_dir=tmp_path,
                             config=ServiceConfig(workers=0),
                             retry=RetryPolicy(max_attempts=2,
                                               base_delay_s=0.001))
        summary = outcome_summary(result.as_replay_result())
        assert summary["n_requests"] == 60
        assert 0 < summary["delivered_fraction"] <= 1.0


class TestServiceSmokeHTTP:
    def test_service_smoke_http_stub_with_crash(self, tmp_path):
        """CI smoke: full service path against the in-repo HTTP stub
        with one injected worker crash; full coverage asserted."""
        from repro.platform import StubServer

        trace = make_trace(n=60, horizon=10.0)
        with StubServer() as stub:
            factory = functools.partial(_http_factory, stub.url)
            plan = ServiceFaultPlan(worker_crash=(
                CrashPoint(shard=0, at_index=2, mode="sigkill"),
            ))
            result = run_service(
                trace, factory, service_dir=tmp_path,
                config=ServiceConfig(workers=2, checkpoint_every=5,
                                     heartbeat_timeout_s=10.0,
                                     max_shards=4),
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.001),
                fault_plan=plan,
            )
        assert result.coverage.ok
        assert result.coverage.restarts >= 1
        assert result.outcome_counts()["ok"] == 60
        # the stub saw every request at least once (restarts may re-send
        # requests completed after the last checkpoint)
        assert stub.n_requests >= 60
        assert len(result.records) >= 60


def _http_factory(url):
    from repro.platform import HTTPBackend

    return HTTPBackend(url, timeout_s=5.0)


class TestOutcomeCodesStable:
    def test_shed_code_round_trips_through_ledger(self, tmp_path):
        # guards the ledger encoding: coverage counts are derived from
        # the uint8 codes, so taxonomy order is load-bearing
        assert OUTCOME_CODES["shed"] == 4


class _NonRetryableError(RuntimeError):
    retryable = False


class _NonRetryableBackend:
    def invoke(self, timestamp_s, workload_id):
        raise _NonRetryableError("permanent rejection")

    def drain(self):
        return []


class _AlwaysFailBackend:
    def invoke(self, timestamp_s, workload_id):
        raise RuntimeError("down hard")

    def drain(self):
        return []


class _FailOnceBackend:
    def __init__(self):
        self.calls = 0

    def invoke(self, timestamp_s, workload_id):
        self.calls += 1
        if self.calls == 1:
            raise RuntimeError("transient")

    def drain(self):
        return []


class TestShardLoopEdges:
    """Direct ``_run_shard`` exercises for branches the end-to-end runs
    only reach inside worker processes (where coverage can't see them)."""

    @staticmethod
    def _work(tmp_path, trace, **kw):
        from repro.loadgen.service import _ShardWork

        fields = dict(
            timestamps=trace.timestamps_s,
            workload_ids=trace.workload_ids,
            bounds=[(0, trace.n_requests)],
            epoch_wall_s=0.0,
            speed=float("inf"),
            max_lag_s=None,
            checkpoint_every=1000,
            heartbeat_every=2,
            collect_records=False,
            service_dir=str(tmp_path),
            backend_factory=_null_factory,
            retry=None,
            breaker_spec=None,
            fault_plan=None,
        )
        fields.update(kw)
        return _ShardWork(**fields)

    def test_heartbeat_cadence_and_periodic_checkpoints(self, tmp_path):
        from repro.loadgen.service import (
            _run_shard,
            _shard_checkpoint_path,
        )

        trace = make_trace(n=6)
        work = self._work(tmp_path, trace, checkpoint_every=2)
        beats = []
        payload = _run_shard(0, work, heartbeat=beats.append)
        assert payload["outcomes"].tolist() == [OUTCOME_CODES["ok"]] * 6
        assert beats == [0, 2, 4]  # every heartbeat_every-th request
        assert _shard_checkpoint_path(str(tmp_path), 0).exists()

    def test_non_retryable_error_is_dropped(self, tmp_path):
        from repro.loadgen.service import _run_shard

        trace = make_trace(n=4)
        work = self._work(tmp_path, trace,
                          backend_factory=_NonRetryableBackend,
                          retry=RetryPolicy(max_attempts=3))
        payload = _run_shard(0, work)
        assert payload["outcomes"].tolist() == \
            [OUTCOME_CODES["dropped"]] * 4
        assert payload["attempts"].tolist() == [1] * 4

    def test_deadline_exhaustion_times_out_in_shard(self, tmp_path):
        from repro.loadgen.service import _run_shard

        trace = make_trace(n=3)
        work = self._work(
            tmp_path, trace, backend_factory=_AlwaysFailBackend,
            retry=RetryPolicy(max_attempts=5, base_delay_s=0.2,
                              jitter=0.0, deadline_s=0.05),
        )
        payload = _run_shard(0, work)
        # first backoff (0.2s) would blow the 0.05s budget: one attempt
        assert payload["outcomes"].tolist() == \
            [OUTCOME_CODES["timeout"]] * 3
        assert payload["attempts"].tolist() == [1] * 3

    def test_breaker_sheds_inside_the_retry_loop(self, tmp_path):
        from repro.loadgen.service import _run_shard

        trace = make_trace(n=5)
        work = self._work(
            tmp_path, trace, backend_factory=_AlwaysFailBackend,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0,
                              jitter=0.0),
            breaker_spec=BreakerSpec(failure_threshold=1,
                                     reset_timeout_s=10_000.0),
        )
        payload = _run_shard(0, work)
        # attempt 1 trips the breaker; the retry loop sheds mid-request
        assert payload["outcomes"][0] == OUTCOME_CODES["shed"]
        # later requests are shed at admission (breaker still open)
        assert set(payload["outcomes"][1:].tolist()) == \
            {OUTCOME_CODES["shed"]}
        assert payload["shed_breaker"] == 5

    def test_paced_retry_sleeps_and_breaker_records_success(
            self, tmp_path):
        from repro.loadgen.service import _run_shard

        trace = make_trace(n=3, horizon=1.0)
        work = self._work(
            tmp_path, trace, backend_factory=_FailOnceBackend,
            epoch_wall_s=time.time(), speed=1000.0,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.1,
                              jitter=0.0),
            breaker_spec=BreakerSpec(failure_threshold=5,
                                     reset_timeout_s=30.0),
        )
        payload = _run_shard(0, work)
        # paced run: the transient failure retried (backoff scaled by
        # speed), everything after recorded as breaker successes
        assert payload["outcomes"][0] == OUTCOME_CODES["retried"]
        assert set(payload["outcomes"][1:].tolist()) == \
            {OUTCOME_CODES["ok"]}

    def test_sleep_until_heartbeats_through_long_waits(self):
        from repro.loadgen.service import _sleep_until

        beats = []
        _sleep_until(time.time() + 0.25, beats.append,
                     max_slice_s=0.05)
        assert beats and set(beats) == {-1}

    def test_prepare_service_dir_clears_stale_state(self, tmp_path):
        from repro.loadgen.service import _prepare_service_dir

        ckpt = tmp_path / "shard-0000.npz"
        sentinel = tmp_path / "shard-0001.crashed"
        ckpt.touch()
        sentinel.touch()
        _prepare_service_dir(tmp_path, resume=True)
        assert ckpt.exists()          # checkpoints survive a resume
        assert not sentinel.exists()  # crash sentinels never do
        sentinel.touch()
        _prepare_service_dir(tmp_path, resume=False)
        assert not ckpt.exists()
        assert not sentinel.exists()

    def test_crash_trigger_is_one_shot_and_targeted(self, tmp_path):
        from repro.loadgen.service import (
            _crash_sentinel,
            _maybe_trigger_crash,
        )

        crash = CrashPoint(shard=0, at_index=7, mode="sigkill")
        # no plan / wrong index: no-ops
        _maybe_trigger_crash(None, 7, str(tmp_path))
        _maybe_trigger_crash(crash, 6, str(tmp_path))
        # an existing sentinel means the crash already fired once: the
        # restarted shard must pass through unharmed
        _crash_sentinel(str(tmp_path), 0).touch()
        _maybe_trigger_crash(crash, 7, str(tmp_path))

    def test_fault_plan_accessors(self):
        plan = ServiceFaultPlan(
            error_rate=0.0,
            worker_crash=(CrashPoint(shard=2, at_index=10),),
        )
        assert plan.should_error(0, 1) is False  # zero rate: never
        assert plan.crash_for_shard(2).at_index == 10
        assert plan.crash_for_shard(1) is None

    def test_config_budget_validation_and_start_method(self):
        with pytest.raises(ValueError, match="max_restarts"):
            ServiceConfig(max_restarts_per_shard=-1)
        with pytest.raises(ValueError, match="service_timeout_s"):
            ServiceConfig(service_timeout_s=0.0)
        cfg = ServiceConfig(start_method="spawn")
        assert cfg.resolved_start_method() == "spawn"
