"""repro-lint: fixture-driven rule tests, pragma behavior, reporters,
and the self-check that keeps ``src/repro`` clean.

Each rule ID gets at least one *bad* fixture proving it detects its
hazard and one *good* fixture proving the compliant idiom passes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    all_rules,
    lint_paths,
    lint_source,
    pragma_lines,
    render_console,
    render_json,
)
from repro.lint.cli import main as lint_main
from repro.lint.reporters import JSON_SCHEMA_VERSION

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

#: Module path that places a fixture inside a seeded stage package
#: (DET003 is scoped to those).
SEEDED_PATH = "src/repro/core/fixture_mod.py"
UNSEEDED_PATH = "src/repro/platform/fixture_mod.py"
#: Module path inside the load-generator package (DET004 is scoped there).
LOADGEN_PATH = "src/repro/loadgen/fixture_mod.py"


def rules_of(snippet: str, *, path: str = SEEDED_PATH) -> set[str]:
    result = lint_source(snippet, path)
    return {f.rule for f in result.unsuppressed}


# ---------------------------------------------------------------------------
# fixture pairs: (rule, bad snippet, good snippet)
# ---------------------------------------------------------------------------
FIXTURES = [
    (
        "DET001",
        "import time\n\ndef f():\n    return time.time()\n",
        "def f(now_s: float) -> float:\n    return now_s\n",
    ),
    (
        "DET001",
        "from time import perf_counter as pc\n\ndef f():\n    return pc()\n",
        "import numpy as np\n\ndef f(rng: np.random.Generator):\n"
        "    return rng.random()\n",
    ),
    (
        "DET001",
        "from datetime import datetime\n\ndef f():\n"
        "    return datetime.now()\n",
        "from datetime import datetime\n\ndef f(stamp: datetime):\n"
        "    return stamp\n",
    ),
    (
        "DET001",
        "import os\n\ndef f():\n    return os.urandom(8)\n",
        "import os\n\ndef f():\n    return os.cpu_count()\n",
    ),
    (
        "DET002",
        "import numpy as np\n\ndef f():\n    return np.random.normal()\n",
        "import numpy as np\n\ndef f(rng: np.random.Generator):\n"
        "    return rng.normal()\n",
    ),
    (
        "DET002",
        "import numpy as np\n\ndef f():\n    np.random.seed(0)\n",
        "import numpy as np\n\ndef f():\n"
        "    return np.random.default_rng(0)\n",
    ),
    (
        "DET002",
        "import random\n\ndef f():\n    return random.random()\n",
        "import numpy as np\n\ndef f():\n"
        "    return np.random.default_rng(1).random()\n",
    ),
    (
        "DET002",
        "from random import shuffle\n",
        "from numpy.random import default_rng\n",
    ),
    (
        "DET003",
        "def f(items):\n    out = []\n"
        "    for x in set(items):\n        out.append(x)\n    return out\n",
        "def f(items):\n    out = []\n"
        "    for x in sorted(set(items)):\n"
        "        out.append(x)\n    return out\n",
    ),
    (
        "DET003",
        "def f(d):\n    return [v for v in {1, 2, 3}]\n",
        "def f(d):\n    return [v for v in sorted({1, 2, 3})]\n",
    ),
    (
        "DET003",
        "def f(d):\n    return list(d.keys() | {1})\n",
        "def f(d):\n    return sorted(d.keys() | {1})\n",
    ),
    (
        "CACHE001",
        "from repro.cache import fingerprint\n\n"
        "def stage(trace, mode, seed, cache):\n"
        "    key = fingerprint('stage', trace, seed)\n"
        "    return cache.memoize(key, lambda: trace)\n",
        "from repro.cache import fingerprint\n\n"
        "def stage(trace, mode, seed, cache):\n"
        "    key = fingerprint('stage', trace, mode, seed)\n"
        "    return cache.memoize(key, lambda: trace)\n",
    ),
    (
        "CACHE001",
        # Derived locals do NOT launder a missing parameter ...
        "from repro.cache import fingerprint\n\n"
        "def stage(trace, shards):\n"
        "    n = 4\n"
        "    return fingerprint('stage', trace, n)\n",
        # ... but they do carry coverage when derived FROM the parameter.
        "from repro.cache import fingerprint\n\n"
        "def stage(trace, shards):\n"
        "    n = shards if shards is not None else 4\n"
        "    return fingerprint('stage', trace, n)\n",
    ),
    (
        "TEL001",
        "def f(reg, xs):\n    for x in xs:\n"
        "        reg.counter('n', 'help').inc()\n",
        "def f(reg, xs):\n    ctr = reg.counter('n', 'help')\n"
        "    for x in xs:\n        ctr.inc()\n",
    ),
    (
        "TEL001",
        "from repro.telemetry import registry\n\n"
        "def f(xs):\n    for x in xs:\n"
        "        if registry.active() is not None:\n            pass\n",
        "from repro.telemetry import registry\n\n"
        "def f(xs):\n    reg = registry.active()\n"
        "    for x in xs:\n        if reg is not None:\n            pass\n",
    ),
    (
        "GEN001",
        "def f(x):\n    return x == 0.3\n",
        "import math\n\ndef f(x):\n    return math.isclose(x, 0.3)\n",
    ),
    (
        "GEN001",
        "def f(x):\n    return 1.5 != x\n",
        "def f(x):\n    return x == 0.0\n",  # exact-zero guard is allowed
    ),
    (
        "GEN002",
        "def f(x, acc=[]):\n    acc.append(x)\n    return acc\n",
        "def f(x, acc=None):\n    acc = [] if acc is None else acc\n"
        "    acc.append(x)\n    return acc\n",
    ),
    (
        "GEN002",
        "def f(x, opts=dict()):\n    return opts\n",
        "def f(x, opts=()):\n    return opts\n",
    ),
    (
        "GEN003",
        "def f():\n    try:\n        return 1\n"
        "    except:\n        return 2\n",
        "def f():\n    try:\n        return 1\n"
        "    except Exception:\n        return 2\n",
    ),
]

#: DET004 only fires for modules under ``repro.loadgen``, so its fixtures
#: run at LOADGEN_PATH rather than SEEDED_PATH.
LOADGEN_FIXTURES = [
    (
        "DET004",
        # sleeping for the previous response's latency: closed-loop
        "import time\n\n"
        "def replay(reqs, backend):\n"
        "    for r in reqs:\n"
        "        latency_s = backend.invoke(r)\n"
        "        time.sleep(latency_s)\n",
        # pacing toward an absolute schedule target: open-loop
        "import time\n\n"
        "def replay(reqs, backend, epoch, speed):\n"
        "    for ts, wid in reqs:\n"
        "        delay = epoch + ts / speed - time.monotonic()\n"
        "        if delay > 0:\n"
        "            time.sleep(delay)\n"
        "        backend.invoke(wid)\n",
    ),
    (
        "DET004",
        # one level of local dataflow still counts as completion-derived
        "import time\n\n"
        "def replay(reqs, backend):\n"
        "    for r in reqs:\n"
        "        elapsed = backend.invoke(r)\n"
        "        pause = elapsed * 0.5\n"
        "        time.sleep(pause)\n",
        # retry backoff keyed on the attempt counter is fine
        "import time\n\n"
        "def retry_pause(attempt):\n"
        "    backoff_s = 0.1 * 2 ** attempt\n"
        "    time.sleep(backoff_s)\n",
    ),
]


@pytest.mark.parametrize(
    "rule,bad,good",
    FIXTURES,
    ids=[f"{r}-{i}" for i, (r, _, _) in enumerate(FIXTURES)],
)
def test_rule_detects_bad_and_passes_good(rule, bad, good):
    assert rule in rules_of(bad), f"{rule} missed its hazard fixture"
    assert rule not in rules_of(good), f"{rule} false-positive on good fixture"


@pytest.mark.parametrize(
    "rule,bad,good",
    LOADGEN_FIXTURES,
    ids=[f"{r}-{i}" for i, (r, _, _) in enumerate(LOADGEN_FIXTURES)],
)
def test_loadgen_rule_detects_bad_and_passes_good(rule, bad, good):
    assert rule in rules_of(bad, path=LOADGEN_PATH), \
        f"{rule} missed its hazard fixture"
    assert rule not in rules_of(good, path=LOADGEN_PATH), \
        f"{rule} false-positive on good fixture"


def test_every_rule_id_has_a_failing_fixture():
    covered = {rule for rule, _, _ in FIXTURES}
    covered |= {rule for rule, _, _ in LOADGEN_FIXTURES}
    assert covered == {r.rule_id for r in all_rules()}


def test_det004_scoped_to_loadgen():
    snippet = (
        "import time\n\n"
        "def f(backend):\n"
        "    rtt = backend.ping()\n"
        "    time.sleep(rtt)\n"
    )
    assert "DET004" in rules_of(snippet, path=LOADGEN_PATH)
    assert "DET004" not in rules_of(snippet, path=SEEDED_PATH)
    assert "DET004" not in rules_of(snippet, path=UNSEEDED_PATH)


def test_det004_pragma_suppresses():
    snippet = (
        "import time\n\n"
        "def f(backend):\n"
        "    rtt = backend.ping()\n"
        "    time.sleep(rtt)  # repro: allow-closed-loop-pacing\n"
    )
    result = lint_source(snippet, LOADGEN_PATH)
    assert "DET004" not in {f.rule for f in result.unsuppressed}
    assert "DET004" in {f.rule for f in result.suppressed}


def test_det003_scoped_to_seeded_packages():
    snippet = "def f(items):\n    return [x for x in set(items)]\n"
    assert "DET003" in rules_of(snippet, path=SEEDED_PATH)
    assert "DET003" not in rules_of(snippet, path=UNSEEDED_PATH)


def test_det001_applies_outside_seeded_packages_too():
    snippet = "import time\n\ndef f():\n    return time.time()\n"
    assert "DET001" in rules_of(snippet, path=UNSEEDED_PATH)


def test_cache001_exempts_execution_knobs_and_callables():
    snippet = (
        "from typing import Callable\n"
        "from repro.cache import fingerprint\n\n"
        "def stage(trace, builder: Callable[[], object], cache, jobs=None):\n"
        "    return fingerprint('stage', trace)\n"
    )
    assert "CACHE001" not in rules_of(snippet)


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------
def test_pragma_suppresses_on_same_line():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: allow-wall-clock\n"
    )
    result = lint_source(snippet, SEEDED_PATH)
    assert not result.unsuppressed
    assert [f.rule for f in result.suppressed] == ["DET001"]


def test_pragma_accepts_rule_id_spelling():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: allow-det001\n"
    )
    assert not lint_source(snippet, SEEDED_PATH).unsuppressed


def test_standalone_pragma_covers_following_code_line():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    # repro: allow-wall-clock\n"
        "    # the pacer genuinely needs real time here\n"
        "    return time.time()\n"
    )
    assert not lint_source(snippet, SEEDED_PATH).unsuppressed


def test_pragma_for_wrong_rule_does_not_suppress():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: allow-float-eq\n"
    )
    assert [f.rule for f in lint_source(snippet, SEEDED_PATH).unsuppressed] \
        == ["DET001"]


def test_pragma_multiple_rules_comma_separated():
    snippet = (
        "import time\n\n"
        "def f(x):\n"
        "    # repro: allow-wall-clock, allow-float-eq\n"
        "    return time.time() if x == 0.5 else 0.0\n"
    )
    assert not lint_source(snippet, SEEDED_PATH).unsuppressed


def test_pragma_inside_string_literal_is_ignored():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    s = '# repro: allow-wall-clock'\n"
        "    return time.time(), s\n"
    )
    assert [f.rule for f in lint_source(snippet, SEEDED_PATH).unsuppressed] \
        == ["DET001"]


def test_pragma_lines_maps_tokens():
    allowed = pragma_lines("x = 1  # repro: allow-det001\n")
    assert allowed == {1: {"det001"}}


# ---------------------------------------------------------------------------
# engine / selection
# ---------------------------------------------------------------------------
def test_unknown_rule_selector_raises():
    with pytest.raises(ValueError, match="unknown rule selector"):
        all_rules(select=["nope999"])


def test_selection_by_slug_and_id():
    assert [r.rule_id for r in all_rules(select=["wall-clock"])] == ["DET001"]
    assert [r.rule_id for r in all_rules(select=["GEN002"])] == ["GEN002"]


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    result = lint_paths([bad])
    assert not result.ok
    assert result.parse_errors and result.parse_errors[0].rule == "PARSE"


def test_findings_sorted_and_deduped():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    b = time.time()\n"
        "    a = time.time()\n"
    )
    result = lint_source(snippet, SEEDED_PATH)
    lines = [f.line for f in result.findings]
    assert lines == sorted(lines) and len(set(lines)) == len(lines)


# ---------------------------------------------------------------------------
# reporters
# ---------------------------------------------------------------------------
def _sample_result():
    return lint_source(
        "import time\n\n"
        "def f():\n"
        "    ok = time.time()  # repro: allow-wall-clock\n"
        "    return time.time()\n",
        SEEDED_PATH,
    )


def test_json_reporter_schema():
    payload = json.loads(render_json(_sample_result()))
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert set(payload) == {
        "schema_version", "files_checked", "ok", "findings",
        "parse_errors", "suppressed_count", "summary",
    }
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["suppressed_count"] == 1
    assert payload["summary"] == {"DET001": 1}
    kinds = {
        (f["rule"], f["suppressed"]) for f in payload["findings"]
    }
    assert kinds == {("DET001", True), ("DET001", False)}
    for f in payload["findings"]:
        assert set(f) == {"rule", "slug", "path", "line", "col",
                          "message", "suppressed"}


def test_console_reporter_mentions_rule_and_location():
    text = render_console(_sample_result())
    assert "DET001" in text and ":5:" in text
    assert "suppressed" in text
    # suppressed findings hidden by default, shown on request
    assert "(suppressed)" not in text
    shown = render_console(_sample_result(), show_suppressed=True)
    assert "(suppressed)" in shown


def test_finding_str_format():
    f = Finding(path="a.py", line=3, col=1, rule="DET001",
                slug="wall-clock", message="boom")
    assert str(f) == "a.py:3:1: DET001 [wall-clock] boom"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\n\ndef f():\n    return time.time()\n")

    assert lint_main([str(clean)]) == 0
    assert lint_main([str(dirty)]) == 1
    assert lint_main(["--select", "bogus", str(clean)]) == 2
    capsys.readouterr()


def test_cli_json_output(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\n\ndef f():\n    return time.time()\n")
    code = lint_main(["--format", "json", str(dirty)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["summary"] == {"DET001": 1}


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.rule_id in out


# ---------------------------------------------------------------------------
# the contract: the repo's own source is clean
# ---------------------------------------------------------------------------
def test_self_check_src_repro_is_clean():
    result = lint_paths([SRC_ROOT])
    assert result.files_checked > 50
    report = render_console(result)
    assert result.ok, f"repro-lint found violations:\n{report}"
    # the intentional boundary sites stay visible as suppressions
    assert len(result.suppressed) >= 10
