"""repro-lint: fixture-driven rule tests, pragma behavior, reporters,
and the self-check that keeps ``src/repro`` clean.

Each rule ID gets at least one *bad* fixture proving it detects its
hazard and one *good* fixture proving the compliant idiom passes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    all_rules,
    lint_paths,
    lint_source,
    pragma_lines,
    render_console,
    render_json,
)
from repro.lint.cli import main as lint_main
from repro.lint.reporters import JSON_SCHEMA_VERSION, SARIF_VERSION, render_sarif

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

#: Module path that places a fixture inside a seeded stage package
#: (DET003 is scoped to those).
SEEDED_PATH = "src/repro/core/fixture_mod.py"
UNSEEDED_PATH = "src/repro/platform/fixture_mod.py"
#: Module path inside the load-generator package (DET004 is scoped there).
LOADGEN_PATH = "src/repro/loadgen/fixture_mod.py"


def rules_of(snippet: str, *, path: str = SEEDED_PATH) -> set[str]:
    result = lint_source(snippet, path)
    return {f.rule for f in result.unsuppressed}


# ---------------------------------------------------------------------------
# fixture pairs: (rule, bad snippet, good snippet)
# ---------------------------------------------------------------------------
FIXTURES = [
    (
        "DET001",
        "import time\n\ndef f():\n    return time.time()\n",
        "def f(now_s: float) -> float:\n    return now_s\n",
    ),
    (
        "DET001",
        "from time import perf_counter as pc\n\ndef f():\n    return pc()\n",
        "import numpy as np\n\ndef f(rng: np.random.Generator):\n"
        "    return rng.random()\n",
    ),
    (
        "DET001",
        "from datetime import datetime\n\ndef f():\n"
        "    return datetime.now()\n",
        "from datetime import datetime\n\ndef f(stamp: datetime):\n"
        "    return stamp\n",
    ),
    (
        "DET001",
        "import os\n\ndef f():\n    return os.urandom(8)\n",
        "import os\n\ndef f():\n    return os.cpu_count()\n",
    ),
    (
        "DET002",
        "import numpy as np\n\ndef f():\n    return np.random.normal()\n",
        "import numpy as np\n\ndef f(rng: np.random.Generator):\n"
        "    return rng.normal()\n",
    ),
    (
        "DET002",
        "import numpy as np\n\ndef f():\n    np.random.seed(0)\n",
        "import numpy as np\n\ndef f():\n"
        "    return np.random.default_rng(0)\n",
    ),
    (
        "DET002",
        "import random\n\ndef f():\n    return random.random()\n",
        "import numpy as np\n\ndef f():\n"
        "    return np.random.default_rng(1).random()\n",
    ),
    (
        "DET002",
        "from random import shuffle\n",
        "from numpy.random import default_rng\n",
    ),
    (
        "DET003",
        "def f(items):\n    out = []\n"
        "    for x in set(items):\n        out.append(x)\n    return out\n",
        "def f(items):\n    out = []\n"
        "    for x in sorted(set(items)):\n"
        "        out.append(x)\n    return out\n",
    ),
    (
        "DET003",
        "def f(d):\n    return [v for v in {1, 2, 3}]\n",
        "def f(d):\n    return [v for v in sorted({1, 2, 3})]\n",
    ),
    (
        "DET003",
        "def f(d):\n    return list(d.keys() | {1})\n",
        "def f(d):\n    return sorted(d.keys() | {1})\n",
    ),
    (
        "CACHE001",
        "from repro.cache import fingerprint\n\n"
        "def stage(trace, mode, seed, cache):\n"
        "    key = fingerprint('stage', trace, seed)\n"
        "    return cache.memoize(key, lambda: trace)\n",
        "from repro.cache import fingerprint\n\n"
        "def stage(trace, mode, seed, cache):\n"
        "    key = fingerprint('stage', trace, mode, seed)\n"
        "    return cache.memoize(key, lambda: trace)\n",
    ),
    (
        "CACHE001",
        # Derived locals do NOT launder a missing parameter ...
        "from repro.cache import fingerprint\n\n"
        "def stage(trace, shards):\n"
        "    n = 4\n"
        "    return fingerprint('stage', trace, n)\n",
        # ... but they do carry coverage when derived FROM the parameter.
        "from repro.cache import fingerprint\n\n"
        "def stage(trace, shards):\n"
        "    n = shards if shards is not None else 4\n"
        "    return fingerprint('stage', trace, n)\n",
    ),
    (
        "TEL001",
        "def f(reg, xs):\n    for x in xs:\n"
        "        reg.counter('n', 'help').inc()\n",
        "def f(reg, xs):\n    ctr = reg.counter('n', 'help')\n"
        "    for x in xs:\n        ctr.inc()\n",
    ),
    (
        "TEL001",
        "from repro.telemetry import registry\n\n"
        "def f(xs):\n    for x in xs:\n"
        "        if registry.active() is not None:\n            pass\n",
        "from repro.telemetry import registry\n\n"
        "def f(xs):\n    reg = registry.active()\n"
        "    for x in xs:\n        if reg is not None:\n            pass\n",
    ),
    (
        "GEN001",
        "def f(x):\n    return x == 0.3\n",
        "import math\n\ndef f(x):\n    return math.isclose(x, 0.3)\n",
    ),
    (
        "GEN001",
        "def f(x):\n    return 1.5 != x\n",
        "def f(x):\n    return x == 0.0\n",  # exact-zero guard is allowed
    ),
    (
        "GEN002",
        "def f(x, acc=[]):\n    acc.append(x)\n    return acc\n",
        "def f(x, acc=None):\n    acc = [] if acc is None else acc\n"
        "    acc.append(x)\n    return acc\n",
    ),
    (
        "GEN002",
        "def f(x, opts=dict()):\n    return opts\n",
        "def f(x, opts=()):\n    return opts\n",
    ),
    (
        "GEN003",
        "def f():\n    try:\n        return 1\n"
        "    except:\n        return 2\n",
        "def f():\n    try:\n        return 1\n"
        "    except Exception:\n        return 2\n",
    ),
]

#: DET004 only fires for modules under ``repro.loadgen``, so its fixtures
#: run at LOADGEN_PATH rather than SEEDED_PATH.
LOADGEN_FIXTURES = [
    (
        "DET004",
        # sleeping for the previous response's latency: closed-loop
        "import time\n\n"
        "def replay(reqs, backend):\n"
        "    for r in reqs:\n"
        "        latency_s = backend.invoke(r)\n"
        "        time.sleep(latency_s)\n",
        # pacing toward an absolute schedule target: open-loop
        "import time\n\n"
        "def replay(reqs, backend, epoch, speed):\n"
        "    for ts, wid in reqs:\n"
        "        delay = epoch + ts / speed - time.monotonic()\n"
        "        if delay > 0:\n"
        "            time.sleep(delay)\n"
        "        backend.invoke(wid)\n",
    ),
    (
        "DET004",
        # one level of local dataflow still counts as completion-derived
        "import time\n\n"
        "def replay(reqs, backend):\n"
        "    for r in reqs:\n"
        "        elapsed = backend.invoke(r)\n"
        "        pause = elapsed * 0.5\n"
        "        time.sleep(pause)\n",
        # retry backoff keyed on the attempt counter is fine
        "import time\n\n"
        "def retry_pause(attempt):\n"
        "    backoff_s = 0.1 * 2 ** attempt\n"
        "    time.sleep(backoff_s)\n",
    ),
]


#: Whole-program rule fixtures: (rule, path, bad, good).  Paths pick the
#: module scope each rule applies to (DET005 needs a deterministic-scope
#: module; PAR001 needs a ``repro.*`` module).
INTERPROC_FIXTURES = [
    (
        "DET005",
        SEEDED_PATH,
        # the helper's pragma legitimises ITS boundary; the deterministic
        # caller consuming the returned wall-clock value is the bug
        "import time\n\n"
        "def _now():\n"
        "    return time.time()  # repro: allow-wall-clock\n\n"
        "def admit(job):\n"
        "    deadline = _now() + 5.0\n"
        "    return deadline\n",
        "def admit(job, now_s: float):\n"
        "    return now_s + 5.0\n",
    ),
    (
        "DET005",
        SEEDED_PATH,
        # two hops: unseeded OS-entropy rng laundered through a chain
        "import numpy as np\n\n"
        "def _fresh():\n"
        "    return np.random.default_rng()\n\n"
        "def _stream():\n"
        "    rng = _fresh()\n"
        "    return rng\n\n"
        "def draw(n):\n"
        "    return _stream().random(n)\n",
        "import numpy as np\n\n"
        "def make_rng(seed: int):\n"
        "    return np.random.default_rng(seed)\n\n"
        "def draw(seed, n):\n"
        "    return make_rng(seed).random(n)\n",
    ),
    (
        "CONC001",
        UNSEEDED_PATH,
        "import multiprocessing as mp\n\n"
        "_RESULTS = []\n\n"
        "def _worker(idx):\n"
        "    _RESULTS.append(idx)\n\n"
        "def launch():\n"
        "    p = mp.Process(target=_worker, args=(0,))\n"
        "    p.start()\n"
        "    return p\n",
        "import multiprocessing as mp\n\n"
        "def _worker(conn, idx):\n"
        "    results = []\n"
        "    results.append(idx)\n"
        "    conn.send(tuple(results))\n\n"
        "def launch(conn):\n"
        "    p = mp.Process(target=_worker, args=(conn, 0))\n"
        "    p.start()\n"
        "    return p\n",
    ),
    (
        "CONC001",
        UNSEEDED_PATH,
        "import multiprocessing as mp\n\n"
        "_EPOCH = 0.0\n\n"
        "def _worker():\n"
        "    global _EPOCH\n"
        "    _EPOCH = 1.0\n\n"
        "def launch():\n"
        "    return mp.Process(target=_worker)\n",
        "import multiprocessing as mp\n\n"
        "def _worker(q):\n"
        "    q.put(1.0)\n\n"
        "def launch(q):\n"
        "    return mp.Process(target=_worker, args=(q,))\n",
    ),
    (
        "CONC002",
        UNSEEDED_PATH,
        "import multiprocessing as mp\n\n"
        "def launch():\n"
        "    return mp.Process(target=lambda: None)\n",
        "import multiprocessing as mp\n\n"
        "def _worker():\n"
        "    return None\n\n"
        "def launch():\n"
        "    return mp.Process(target=_worker)\n",
    ),
    (
        "CONC002",
        UNSEEDED_PATH,
        # nested def as target + open handle through the pipe
        "import multiprocessing as mp\n\n"
        "def launch(conn, path):\n"
        "    def _inner():\n"
        "        return None\n"
        "    conn.send(open(path))\n"
        "    return mp.Process(target=_inner)\n",
        "import multiprocessing as mp\n\n"
        "def _worker(path):\n"
        "    with open(path) as fh:\n"
        "        return fh.read()\n\n"
        "def launch(conn, path):\n"
        "    conn.send(path)\n"
        "    return mp.Process(target=_worker, args=(path,))\n",
    ),
    (
        "PAR001",
        UNSEEDED_PATH,
        "class ShadowPool:\n"
        "    def pick(self, nodes, rng):\n"
        "        return nodes[0]\n\n"
        "    def pick_many(self, nodes, rng, n):\n"
        "        return [nodes[0]] * n\n",
        # Protocol declarations describe the pair, they don't implement it
        "from typing import Protocol\n\n"
        "class PoolPolicy(Protocol):\n"
        "    def pick(self, nodes, rng): ...\n\n"
        "    def pick_many(self, nodes, rng, n): ...\n",
    ),
    (
        "PAR001",
        UNSEEDED_PATH,
        "class MirrorBackend:\n"
        "    def invoke(self, ts, wid):\n"
        "        return None\n\n"
        "    def invoke_many(self, ts, wids):\n"
        "        for t, w in zip(ts, wids):\n"
        "            self.invoke(t, w)\n",
        # scalar-only classes have no parity obligation
        "class ScalarBackend:\n"
        "    def invoke(self, ts, wid):\n"
        "        return None\n",
    ),
]


@pytest.mark.parametrize(
    "rule,bad,good",
    FIXTURES,
    ids=[f"{r}-{i}" for i, (r, _, _) in enumerate(FIXTURES)],
)
def test_rule_detects_bad_and_passes_good(rule, bad, good):
    assert rule in rules_of(bad), f"{rule} missed its hazard fixture"
    assert rule not in rules_of(good), f"{rule} false-positive on good fixture"


@pytest.mark.parametrize(
    "rule,bad,good",
    LOADGEN_FIXTURES,
    ids=[f"{r}-{i}" for i, (r, _, _) in enumerate(LOADGEN_FIXTURES)],
)
def test_loadgen_rule_detects_bad_and_passes_good(rule, bad, good):
    assert rule in rules_of(bad, path=LOADGEN_PATH), \
        f"{rule} missed its hazard fixture"
    assert rule not in rules_of(good, path=LOADGEN_PATH), \
        f"{rule} false-positive on good fixture"


@pytest.mark.parametrize(
    "rule,path,bad,good",
    INTERPROC_FIXTURES,
    ids=[f"{r}-{i}" for i, (r, _, _, _) in enumerate(INTERPROC_FIXTURES)],
)
def test_interproc_rule_detects_bad_and_passes_good(rule, path, bad, good):
    assert rule in rules_of(bad, path=path), \
        f"{rule} missed its hazard fixture"
    assert rule not in rules_of(good, path=path), \
        f"{rule} false-positive on good fixture"


def test_every_rule_id_has_a_failing_fixture():
    covered = {rule for rule, _, _ in FIXTURES}
    covered |= {rule for rule, _, _ in LOADGEN_FIXTURES}
    covered |= {rule for rule, _, _, _ in INTERPROC_FIXTURES}
    assert covered == {r.rule_id for r in all_rules()}


def test_det004_scoped_to_loadgen():
    snippet = (
        "import time\n\n"
        "def f(backend):\n"
        "    rtt = backend.ping()\n"
        "    time.sleep(rtt)\n"
    )
    assert "DET004" in rules_of(snippet, path=LOADGEN_PATH)
    assert "DET004" not in rules_of(snippet, path=SEEDED_PATH)
    assert "DET004" not in rules_of(snippet, path=UNSEEDED_PATH)


def test_det004_pragma_suppresses():
    snippet = (
        "import time\n\n"
        "def f(backend):\n"
        "    rtt = backend.ping()\n"
        "    time.sleep(rtt)  # repro: allow-closed-loop-pacing\n"
    )
    result = lint_source(snippet, LOADGEN_PATH)
    assert "DET004" not in {f.rule for f in result.unsuppressed}
    assert "DET004" in {f.rule for f in result.suppressed}


def test_det003_scoped_to_seeded_packages():
    snippet = "def f(items):\n    return [x for x in set(items)]\n"
    assert "DET003" in rules_of(snippet, path=SEEDED_PATH)
    assert "DET003" not in rules_of(snippet, path=UNSEEDED_PATH)


def test_det001_applies_outside_seeded_packages_too():
    snippet = "import time\n\ndef f():\n    return time.time()\n"
    assert "DET001" in rules_of(snippet, path=UNSEEDED_PATH)


def test_cache001_exempts_execution_knobs_and_callables():
    snippet = (
        "from typing import Callable\n"
        "from repro.cache import fingerprint\n\n"
        "def stage(trace, builder: Callable[[], object], cache, jobs=None):\n"
        "    return fingerprint('stage', trace)\n"
    )
    assert "CACHE001" not in rules_of(snippet)


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------
def test_pragma_suppresses_on_same_line():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: allow-wall-clock\n"
    )
    result = lint_source(snippet, SEEDED_PATH)
    assert not result.unsuppressed
    assert [f.rule for f in result.suppressed] == ["DET001"]


def test_pragma_accepts_rule_id_spelling():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: allow-det001\n"
    )
    assert not lint_source(snippet, SEEDED_PATH).unsuppressed


def test_standalone_pragma_covers_following_code_line():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    # repro: allow-wall-clock\n"
        "    # the pacer genuinely needs real time here\n"
        "    return time.time()\n"
    )
    assert not lint_source(snippet, SEEDED_PATH).unsuppressed


def test_pragma_for_wrong_rule_does_not_suppress():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: allow-float-eq\n"
    )
    assert [f.rule for f in lint_source(snippet, SEEDED_PATH).unsuppressed] \
        == ["DET001"]


def test_pragma_multiple_rules_comma_separated():
    snippet = (
        "import time\n\n"
        "def f(x):\n"
        "    # repro: allow-wall-clock, allow-float-eq\n"
        "    return time.time() if x == 0.5 else 0.0\n"
    )
    assert not lint_source(snippet, SEEDED_PATH).unsuppressed


def test_pragma_inside_string_literal_is_ignored():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    s = '# repro: allow-wall-clock'\n"
        "    return time.time(), s\n"
    )
    assert [f.rule for f in lint_source(snippet, SEEDED_PATH).unsuppressed] \
        == ["DET001"]


def test_pragma_lines_maps_tokens():
    allowed = pragma_lines("x = 1  # repro: allow-det001\n")
    assert allowed == {1: {"det001"}}


# ---------------------------------------------------------------------------
# engine / selection
# ---------------------------------------------------------------------------
def test_unknown_rule_selector_raises():
    with pytest.raises(ValueError, match="unknown rule selector"):
        all_rules(select=["nope999"])


def test_selection_by_slug_and_id():
    assert [r.rule_id for r in all_rules(select=["wall-clock"])] == ["DET001"]
    assert [r.rule_id for r in all_rules(select=["GEN002"])] == ["GEN002"]


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    result = lint_paths([bad])
    assert not result.ok
    assert result.parse_errors and result.parse_errors[0].rule == "PARSE"


def test_findings_sorted_and_deduped():
    snippet = (
        "import time\n\n"
        "def f():\n"
        "    b = time.time()\n"
        "    a = time.time()\n"
    )
    result = lint_source(snippet, SEEDED_PATH)
    lines = [f.line for f in result.findings]
    assert lines == sorted(lines) and len(set(lines)) == len(lines)


# ---------------------------------------------------------------------------
# reporters
# ---------------------------------------------------------------------------
def _sample_result():
    return lint_source(
        "import time\n\n"
        "def f():\n"
        "    ok = time.time()  # repro: allow-wall-clock\n"
        "    return time.time()\n",
        SEEDED_PATH,
    )


def test_json_reporter_schema():
    payload = json.loads(render_json(_sample_result()))
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert set(payload) == {
        "schema_version", "files_checked", "ok", "findings",
        "parse_errors", "suppressed_count", "summary",
    }
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["suppressed_count"] == 1
    assert payload["summary"] == {"DET001": 1}
    kinds = {
        (f["rule"], f["suppressed"]) for f in payload["findings"]
    }
    assert kinds == {("DET001", True), ("DET001", False)}
    for f in payload["findings"]:
        assert set(f) == {"rule", "slug", "path", "line", "col",
                          "message", "suppressed"}


def test_console_reporter_mentions_rule_and_location():
    text = render_console(_sample_result())
    assert "DET001" in text and ":5:" in text
    assert "suppressed" in text
    # suppressed findings hidden by default, shown on request
    assert "(suppressed)" not in text
    shown = render_console(_sample_result(), show_suppressed=True)
    assert "(suppressed)" in shown


def test_finding_str_format():
    f = Finding(path="a.py", line=3, col=1, rule="DET001",
                slug="wall-clock", message="boom")
    assert str(f) == "a.py:3:1: DET001 [wall-clock] boom"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\n\ndef f():\n    return time.time()\n")

    assert lint_main([str(clean)]) == 0
    assert lint_main([str(dirty)]) == 1
    assert lint_main(["--select", "bogus", str(clean)]) == 2
    capsys.readouterr()


def test_cli_json_output(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\n\ndef f():\n    return time.time()\n")
    code = lint_main(["--format", "json", str(dirty)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["summary"] == {"DET001": 1}


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.rule_id in out


# ---------------------------------------------------------------------------
# call graph
# ---------------------------------------------------------------------------
def _build_tree(tmp_path, files):
    from repro.lint.callgraph import build_project
    from repro.lint.context import FileContext

    paths = []
    for rel, src in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(src)
        paths.append(p)
    contexts = [FileContext.parse(p) for p in sorted(paths)]
    return build_project(contexts)


def test_callgraph_resolves_aliased_imports(tmp_path):
    project = _build_tree(tmp_path, {
        "src/repro/alpha.py": (
            "import time\n\n"
            "def helper():\n"
            "    return time.time()  # repro: allow-wall-clock\n"
        ),
        "src/repro/beta.py": (
            "from repro.alpha import helper as h\n"
            "import repro.alpha as alpha_mod\n\n"
            "def via_name():\n"
            "    return h()\n\n"
            "def via_module():\n"
            "    return alpha_mod.helper()\n"
        ),
    })
    for fn in ("repro.beta.via_name", "repro.beta.via_module"):
        assert [s.target for s in project.functions[fn].calls] \
            == ["repro.alpha.helper"]
    # taint crosses the module boundary through both alias forms
    tainted = project.returns_tainted
    assert "repro.alpha.helper" in tainted
    assert "repro.beta.via_name" in tainted
    assert "repro.beta.via_module" in tainted


def test_callgraph_resolves_methods_through_project_bases(tmp_path):
    project = _build_tree(tmp_path, {
        "src/repro/gamma.py": (
            "class Base:\n"
            "    def step(self):\n"
            "        return 1\n\n"
            "class Child(Base):\n"
            "    def run(self):\n"
            "        return self.step()\n"
        ),
    })
    calls = project.functions["repro.gamma.Child.run"].calls
    assert [s.target for s in calls] == ["repro.gamma.Base.step"]
    assert project.resolve_method("repro.gamma.Child", "step") \
        == "repro.gamma.Base.step"
    assert project.resolve_method("repro.gamma.Child", "missing") is None


def test_callgraph_import_cycle_terminates_and_propagates(tmp_path):
    project = _build_tree(tmp_path, {
        "src/repro/cyc_a.py": (
            "from repro.cyc_b import pong\n\n"
            "def ping():\n"
            "    return pong()\n"
        ),
        "src/repro/cyc_b.py": (
            "import time\n"
            "from repro.cyc_a import ping\n\n"
            "def pong():\n"
            "    return time.time()  # repro: allow-wall-clock\n\n"
            "def loop():\n"
            "    return ping()\n"
        ),
    })
    tainted = project.returns_tainted  # must not hang on the cycle
    assert {"repro.cyc_b.pong", "repro.cyc_a.ping",
            "repro.cyc_b.loop"} <= set(tainted)


def test_callgraph_base_class_cycle_is_guarded(tmp_path):
    # pathological (would not import), but resolution must not recurse
    project = _build_tree(tmp_path, {
        "src/repro/ouro.py": (
            "class A(B):\n"
            "    pass\n\n"
            "class B(A):\n"
            "    def m(self):\n"
            "        return 1\n"
        ),
    })
    assert project.resolve_method("repro.ouro.A", "m") == "repro.ouro.B.m"
    assert project.resolve_method("repro.ouro.A", "nope") is None


def test_worker_reachability_closure(tmp_path):
    project = _build_tree(tmp_path, {
        "src/repro/workers.py": (
            "import multiprocessing as mp\n\n"
            "def _leaf():\n"
            "    return 1\n\n"
            "def _entry(conn):\n"
            "    return _leaf()\n\n"
            "def bystander():\n"
            "    return 2\n\n"
            "def launch(conn):\n"
            "    return mp.Process(target=_entry, args=(conn,))\n"
        ),
    })
    assert [f.qualname for f in project.worker_entry_points] \
        == ["repro.workers._entry"]
    assert project.worker_reachable \
        == {"repro.workers._entry", "repro.workers._leaf"}


def test_par001_harness_registration_lifts_finding(tmp_path):
    pool = (
        "class EnginePool:\n"
        "    def pick(self, nodes, rng):\n"
        "        return nodes[0]\n\n"
        "    def pick_many(self, nodes, rng, n):\n"
        "        return [nodes[0]] * n\n"
    )
    src = tmp_path / "src" / "repro" / "platform" / "mypool.py"
    src.parent.mkdir(parents=True)
    src.write_text(pool)
    harness = tmp_path / "tests" / "test_simulator_equivalence.py"
    harness.parent.mkdir(parents=True)
    harness.write_text(
        "from repro.platform.mypool import EnginePool\n\n"
        "def test_parity():\n"
        "    assert EnginePool\n"
    )
    registered = lint_paths([tmp_path / "src"])
    assert "PAR001" not in {f.rule for f in registered.unsuppressed}
    harness.unlink()
    unregistered = lint_paths([tmp_path / "src"])
    assert "PAR001" in {f.rule for f in unregistered.unsuppressed}


# ---------------------------------------------------------------------------
# incremental driver
# ---------------------------------------------------------------------------
def _incremental_tree(tmp_path):
    files = {
        "src/repro/ia.py": "def base(x):\n    return x + 1\n",
        "src/repro/ib.py": (
            "from repro.ia import base\n\n"
            "def mid(x):\n    return base(x) * 2\n"
        ),
        "src/repro/ic.py": (
            "from repro.ib import mid\n\n"
            "def top(x):\n    return mid(x) - 3\n"
        ),
    }
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
    return tmp_path / "src"


def _incremental(paths, cache_dir, **kwargs):
    from repro.cache import ContentCache
    from repro.lint.incremental import lint_paths_incremental

    return lint_paths_incremental(paths, ContentCache(cache_dir), **kwargs)


def test_incremental_warm_run_reanalyzes_nothing(tmp_path):
    src = _incremental_tree(tmp_path)
    cold, cold_stats = _incremental([src], tmp_path / "cache")
    assert cold_stats.reused == 0
    assert len(cold_stats.reanalyzed) == 3
    warm, warm_stats = _incremental([src], tmp_path / "cache")
    assert warm_stats.reanalyzed == []
    assert warm_stats.reused == 3
    assert warm.findings == cold.findings
    assert warm.files_checked == cold.files_checked == 3


def test_incremental_matches_cold_lint_results(tmp_path):
    bad = tmp_path / "src" / "repro" / "core" / "gen.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    cold = lint_paths([tmp_path / "src"])
    inc, _ = _incremental([tmp_path / "src"], tmp_path / "cache")
    inc2, stats = _incremental([tmp_path / "src"], tmp_path / "cache")
    assert stats.reanalyzed == []
    assert inc.findings == cold.findings == inc2.findings
    assert not cold.ok


def test_incremental_edit_invalidates_import_closure_dependents(tmp_path):
    src = _incremental_tree(tmp_path)
    _incremental([src], tmp_path / "cache")

    # editing the root of the import chain invalidates every dependent
    ia = src / "repro" / "ia.py"
    ia.write_text(ia.read_text() + "\n# touched\n")
    _, stats = _incremental([src], tmp_path / "cache")
    assert sorted(p.name for p in stats.reanalyzed) \
        == ["ia.py", "ib.py", "ic.py"]

    # editing the leaf invalidates exactly the leaf
    ic = src / "repro" / "ic.py"
    ic.write_text(ic.read_text() + "\n# touched\n")
    _, stats = _incremental([src], tmp_path / "cache")
    assert [p.name for p in stats.reanalyzed] == ["ic.py"]

    # and the tree is warm again afterwards
    _, stats = _incremental([src], tmp_path / "cache")
    assert stats.reanalyzed == []


def test_incremental_mid_chain_edit_spares_the_root(tmp_path):
    src = _incremental_tree(tmp_path)
    _incremental([src], tmp_path / "cache")
    ib = src / "repro" / "ib.py"
    ib.write_text(ib.read_text() + "\n# touched\n")
    _, stats = _incremental([src], tmp_path / "cache")
    assert sorted(p.name for p in stats.reanalyzed) == ["ib.py", "ic.py"]


def test_incremental_rule_selection_keys_separately(tmp_path):
    src = _incremental_tree(tmp_path)
    _, first = _incremental([src], tmp_path / "cache", select=["det001"])
    assert len(first.reanalyzed) == 3
    # a different selection must not serve the det001-only results
    _, second = _incremental([src], tmp_path / "cache")
    assert len(second.reanalyzed) == 3
    _, warm = _incremental([src], tmp_path / "cache", select=["det001"])
    assert warm.reanalyzed == []


# ---------------------------------------------------------------------------
# dead pragmas & decorator coverage
# ---------------------------------------------------------------------------
def test_dead_pragma_reported_with_check_pragmas():
    snippet = (
        "import time\n\n"
        "x = 1  # repro: allow-wall-clock\n\n"
        "def f():\n"
        "    return time.time()  # repro: allow-wall-clock\n"
    )
    result = lint_source(snippet, SEEDED_PATH, check_pragmas=True)
    dead = [f for f in result.unsuppressed if f.rule == "PRAGMA001"]
    assert [f.line for f in dead] == [3]
    # the live pragma on line 6 is not flagged
    assert {f.rule for f in result.suppressed} == {"DET001"}


def test_dead_pragma_silent_without_check_pragmas():
    result = lint_source("x = 1  # repro: allow-wall-clock\n", SEEDED_PATH)
    assert result.ok


def test_standalone_pragma_covers_decorator_lines():
    # DET001 fires inside a multi-line decorator call; the pragma block
    # above the decorated function must reach it
    snippet = (
        "import time\n\n"
        "# repro: allow-wall-clock\n"
        "@_register(\n"
        "    time.time(),\n"
        ")\n"
        "def f():\n"
        "    return 0\n"
    )
    result = lint_source(snippet, SEEDED_PATH)
    assert not result.unsuppressed
    assert [f.rule for f in result.suppressed] == ["DET001"]


def test_standalone_pragma_reaches_def_past_decorators():
    snippet = (
        "# repro: allow-mutable-default\n"
        "@_noop\n"
        "@_other\n"
        "def f(acc=[]):\n"
        "    return acc\n"
    )
    result = lint_source(snippet, SEEDED_PATH)
    assert not result.unsuppressed
    assert [f.rule for f in result.suppressed] == ["GEN002"]


def test_pragma_coverage_stops_at_first_code_line():
    snippet = (
        "import time\n\n"
        "# repro: allow-wall-clock\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    result = lint_source(snippet, SEEDED_PATH)
    assert [f.line for f in result.unsuppressed] == [5]


# ---------------------------------------------------------------------------
# SARIF reporter
# ---------------------------------------------------------------------------
def test_sarif_reporter_structure():
    log = json.loads(render_sarif(_sample_result()))
    assert log["version"] == SARIF_VERSION
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert {"DET001", "DET005", "CONC001", "CONC002", "PAR001",
            "PRAGMA001", "PARSE"} <= rule_ids
    assert len(run["results"]) == 2
    suppressed = [r for r in run["results"] if "suppressions" in r]
    assert len(suppressed) == 1
    assert suppressed[0]["suppressions"][0]["kind"] == "inSource"
    live = next(r for r in run["results"] if "suppressions" not in r)
    assert live["ruleId"] == "DET001"
    assert live["level"] == "error"
    region = live["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 5
    assert region["startColumn"] >= 1


def test_sarif_relativizes_paths(tmp_path):
    dirty = tmp_path / "pkg" / "mod.py"
    dirty.parent.mkdir()
    dirty.write_text("import time\n\ndef f():\n    return time.time()\n")
    log = json.loads(render_sarif(lint_paths([dirty]), root=tmp_path))
    uri = (log["runs"][0]["results"][0]["locations"][0]
           ["physicalLocation"]["artifactLocation"]["uri"])
    assert uri == "pkg/mod.py"


# ---------------------------------------------------------------------------
# CLI: new modes
# ---------------------------------------------------------------------------
def test_cli_check_pragmas(tmp_path, capsys):
    stale = tmp_path / "stale.py"
    stale.write_text("x = 1  # repro: allow-wall-clock\n")
    assert lint_main([str(stale)]) == 0
    assert lint_main(["--check-pragmas", str(stale)]) == 1
    assert "PRAGMA001" in capsys.readouterr().out
    assert lint_main(["--check-pragmas", "--select", "det001",
                      str(stale)]) == 2
    capsys.readouterr()


def test_cli_incremental_modes(tmp_path, capsys, monkeypatch):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x\n")
    cache_dir = str(tmp_path / "cache")
    assert lint_main(["--incremental", "--cache-dir", cache_dir,
                      str(clean)]) == 0
    assert "1 re-analyzed" in capsys.readouterr().out
    assert lint_main(["--incremental", "--cache-dir", cache_dir,
                      str(clean)]) == 0
    assert "0 re-analyzed, 1 reused" in capsys.readouterr().out
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert lint_main(["--incremental", str(clean)]) == 2
    capsys.readouterr()


def test_cli_sarif_output_file(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\n\ndef f():\n    return time.time()\n")
    out = tmp_path / "lint.sarif"
    code = lint_main(["--format", "sarif", "--output", str(out),
                      str(dirty)])
    assert code == 1
    assert capsys.readouterr().out == ""
    log = json.loads(out.read_text())
    assert log["version"] == SARIF_VERSION
    assert log["runs"][0]["results"][0]["ruleId"] == "DET001"


# ---------------------------------------------------------------------------
# the contract: the repo's own source is clean
# ---------------------------------------------------------------------------
def test_self_check_src_repro_is_clean():
    # check_pragmas=True makes this the strictest possible run: every
    # rule (including the interprocedural ones) plus dead-pragma audit
    result = lint_paths([SRC_ROOT], check_pragmas=True)
    assert result.files_checked > 50
    ids = {r.rule_id for r in all_rules()}
    assert {"DET005", "CONC001", "CONC002", "PAR001"} <= ids
    report = render_console(result)
    assert result.ok, f"repro-lint found violations:\n{report}"
    # the intentional boundary sites stay visible as suppressions
    assert len(result.suppressed) >= 10
