"""Tests for the trace data model and derived operations."""

import numpy as np
import pytest

from repro.traces import MultiDaySummary, Trace
from repro.traces.ops import (
    function_duration_cdf,
    invocation_duration_cdf,
    relative_load_series,
    sample_functions,
)


def tiny_trace(n=4, minutes=10, seed=0):
    rng = np.random.default_rng(seed)
    return Trace(
        name="tiny",
        function_ids=np.array([f"f{i}" for i in range(n)]),
        app_ids=np.array([f"a{i % 2}" for i in range(n)]),
        durations_ms=rng.uniform(10, 1000, n),
        per_minute=rng.integers(0, 5, (n, minutes)).astype(np.int32),
        app_memory_mb={"a0": 128.0, "a1": 256.0},
    )


class TestTraceValidation:
    def test_valid_roundtrip(self):
        t = tiny_trace()
        assert t.n_functions == 4
        assert t.n_minutes == 10

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one function"):
            Trace("x", np.array([]), np.array([]), np.array([]),
                  np.zeros((0, 5), dtype=np.int32))

    def test_rejects_misaligned_apps(self):
        t = tiny_trace()
        with pytest.raises(ValueError, match="app_ids"):
            Trace("x", t.function_ids, t.app_ids[:2], t.durations_ms,
                  t.per_minute)

    def test_rejects_nonpositive_duration(self):
        t = tiny_trace()
        bad = t.durations_ms.copy()
        bad[0] = 0.0
        with pytest.raises(ValueError, match="strictly positive"):
            Trace("x", t.function_ids, t.app_ids, bad, t.per_minute)

    def test_rejects_negative_counts(self):
        t = tiny_trace()
        bad = t.per_minute.copy()
        bad[0, 0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            Trace("x", t.function_ids, t.app_ids, t.durations_ms, bad)

    def test_rejects_duplicate_ids(self):
        t = tiny_trace()
        dup = t.function_ids.copy()
        dup[1] = dup[0]
        with pytest.raises(ValueError, match="unique"):
            Trace("x", dup, t.app_ids, t.durations_ms, t.per_minute)

    def test_rejects_float_matrix(self):
        t = tiny_trace()
        with pytest.raises(ValueError, match="integer"):
            Trace("x", t.function_ids, t.app_ids, t.durations_ms,
                  t.per_minute.astype(np.float64))

    def test_rejects_1d_matrix(self):
        t = tiny_trace()
        with pytest.raises(ValueError, match="n_minutes"):
            Trace("x", t.function_ids, t.app_ids, t.durations_ms,
                  t.per_minute[:, 0])


class TestTraceDerived:
    def test_totals_consistent(self):
        t = tiny_trace()
        assert t.total_invocations == int(t.per_minute.sum())
        assert t.invocations_per_function.sum() == t.total_invocations
        assert t.aggregate_per_minute.sum() == t.total_invocations

    def test_busiest_minute(self):
        t = tiny_trace()
        assert t.busiest_minute_rate == t.aggregate_per_minute.max()

    def test_memory_array(self):
        t = tiny_trace()
        np.testing.assert_allclose(
            np.sort(t.memory_per_app_array()), [128.0, 256.0]
        )

    def test_memory_array_empty_raises(self):
        t = tiny_trace()
        t.app_memory_mb = {}
        with pytest.raises(ValueError, match="no memory"):
            t.memory_per_app_array()


class TestTraceTransforms:
    def test_select_subset(self):
        t = tiny_trace()
        s = t.select([0, 2])
        assert s.n_functions == 2
        assert list(s.function_ids) == ["f0", "f2"]
        np.testing.assert_array_equal(s.per_minute, t.per_minute[[0, 2]])

    def test_select_prunes_memory(self):
        t = tiny_trace()
        s = t.select([0])  # f0 belongs to app a0 only
        assert set(s.app_memory_mb) == {"a0"}

    def test_select_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            tiny_trace().select([])

    def test_minute_range(self):
        t = tiny_trace()
        s = t.minute_range(2, 7)
        assert s.n_minutes == 5
        np.testing.assert_array_equal(s.per_minute, t.per_minute[:, 2:7])

    def test_minute_range_validation(self):
        t = tiny_trace()
        for bad in [(-1, 5), (5, 5), (0, 11)]:
            with pytest.raises(ValueError, match="minute range"):
                t.minute_range(*bad)

    def test_nonzero_functions(self):
        t = tiny_trace()
        t.per_minute[1, :] = 0
        s = t.nonzero_functions()
        assert "f1" not in set(s.function_ids)


class TestMultiDaySummary:
    def test_shapes(self):
        s = MultiDaySummary(np.ones((5, 14)), np.ones((5, 14)))
        assert s.n_functions == 5 and s.n_days == 14

    def test_rejects_single_day(self):
        with pytest.raises(ValueError, match="two days"):
            MultiDaySummary(np.ones((5, 1)), np.ones((5, 1)))

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            MultiDaySummary(np.ones((5, 3)), np.ones((4, 3)))


class TestOps:
    def test_function_cdf_unweighted(self):
        t = tiny_trace()
        cdf = function_duration_cdf(t)
        assert cdf.n_points == 4

    def test_invocation_cdf_weighted(self):
        t = tiny_trace(seed=3)
        cdf = invocation_duration_cdf(t)
        counts = t.invocations_per_function
        expected = np.average(t.durations_ms, weights=counts)
        assert cdf.mean() == pytest.approx(expected)

    def test_invocation_cdf_needs_invocations(self):
        t = tiny_trace()
        t.per_minute[:] = 0
        with pytest.raises(ValueError, match="no invocations"):
            invocation_duration_cdf(t)

    def test_relative_load_peak_is_one(self):
        rel = relative_load_series(np.array([1, 4, 2]))
        np.testing.assert_allclose(rel, [0.25, 1.0, 0.5])

    def test_relative_load_zero_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            relative_load_series(np.zeros(5))

    def test_sample_functions_uniform(self):
        t = tiny_trace()
        s = sample_functions(t, 2, np.random.default_rng(0))
        assert s.n_functions == 2

    def test_sample_functions_bounds(self):
        t = tiny_trace()
        with pytest.raises(ValueError):
            sample_functions(t, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_functions(t, 5, np.random.default_rng(0))

    def test_sample_weighted_prefers_popular(self):
        rng = np.random.default_rng(0)
        n = 50
        per_minute = np.zeros((n, 10), dtype=np.int32)
        per_minute[0, :] = 1000  # f0 hugely popular
        per_minute[1:, 0] = 1
        t = Trace(
            "w", np.array([f"f{i}" for i in range(n)]),
            np.array(["a"] * n), np.full(n, 100.0), per_minute
        )
        hits = sum(
            "f0" in set(sample_functions(t, 1, np.random.default_rng(i),
                                         weighted=True).function_ids)
            for i in range(20)
        )
        assert hits >= 18
