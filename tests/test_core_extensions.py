"""Tests for the section-3.3 extensions: variable input, memory-aware
mapping, and spec operations."""

import numpy as np
import pytest

from repro.core import (
    ShrinkRay,
    build_variant_table,
    fidelity_report,
    filter_spec,
    map_functions,
    merge_specs,
    rescale_spec,
    sample_variants,
    shrink,
)
from repro.loadgen import generate_request_trace
from repro.traces import Trace, synthetic_azure_trace
from repro.workloads import Workload, WorkloadPool, build_default_pool


@pytest.fixture(scope="module")
def azure():
    return synthetic_azure_trace(n_functions=1200, seed=33)


@pytest.fixture(scope="module")
def pool():
    return build_default_pool()


def small_trace(durations, counts=None):
    n = len(durations)
    if counts is None:
        counts = [10] * n
    return Trace(
        "vt", np.array([f"f{i}" for i in range(n)]),
        np.array(["a"] * n), np.array(durations, dtype=float),
        np.array(counts, dtype=np.int64)[:, None],
    )


def make_pool(spec):
    return WorkloadPool([
        Workload(f"{fam}:{i}", fam, {"i": i}, rt, mem)
        for i, (fam, rt, mem) in enumerate(spec)
    ])


class TestVariantTable:
    def test_variants_within_threshold(self):
        p = make_pool([("a", 95.0, 30), ("b", 100.0, 30), ("c", 108.0, 30),
                       ("d", 300.0, 30)])
        table = build_variant_table(small_trace([100.0]), p,
                                    error_threshold_pct=10)
        ids = {v["workload_id"] for v in table[0]}
        assert ids == {"a:0", "b:1", "c:2"}

    def test_weights_normalised_and_favour_closest(self):
        p = make_pool([("a", 100.0, 30), ("b", 109.0, 30)])
        table = build_variant_table(small_trace([100.0]), p)
        weights = {v["workload_id"]: v["weight"] for v in table[0]}
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights["a:0"] > weights["b:1"]

    def test_fallback_single_variant(self):
        p = make_pool([("a", 1.0, 30)])
        table = build_variant_table(small_trace([1000.0]), p)
        assert len(table[0]) == 1

    def test_max_variants_cap(self):
        p = make_pool([("a", 100.0 + d, 30) for d in range(8)])
        table = build_variant_table(small_trace([103.0]), p, max_variants=3)
        assert len(table[0]) == 3

    def test_validation(self):
        p = make_pool([("a", 1.0, 30)])
        with pytest.raises(ValueError):
            build_variant_table(small_trace([1.0]), p, max_variants=0)
        with pytest.raises(ValueError):
            build_variant_table(small_trace([1.0]), p,
                                error_threshold_pct=-1)

    def test_sample_variants_distribution(self):
        table = [[
            {"workload_id": "x", "family": "fa", "runtime_ms": 1.0,
             "memory_mb": 1.0, "weight": 0.8},
            {"workload_id": "y", "family": "fb", "runtime_ms": 2.0,
             "memory_mb": 1.0, "weight": 0.2},
        ]]
        rng = np.random.default_rng(0)
        ids, rts, fams = sample_variants(table, np.zeros(20000, dtype=int),
                                         rng)
        share_x = (ids == "x").mean()
        assert share_x == pytest.approx(0.8, abs=0.02)
        assert set(fams) == {"fa", "fb"}

    def test_sample_variants_validation(self):
        table = [[{"workload_id": "x", "family": "f", "runtime_ms": 1.0,
                   "memory_mb": 1.0, "weight": 1.0}]]
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_variants(table, np.array([], dtype=int), rng)
        with pytest.raises(ValueError):
            sample_variants(table, np.array([5]), rng)
        with pytest.raises(ValueError):
            sample_variants([[]], np.array([0]), rng)

    def test_end_to_end_variable_spec(self, azure, pool):
        sr = ShrinkRay(variable_input=True, max_variants=4)
        spec = sr.run(azure, pool, max_rps=5.0, duration_minutes=15, seed=1)
        assert "variants" in spec.metadata
        var = generate_request_trace(spec, seed=1)
        fixed = generate_request_trace(spec, seed=1, variable_input=False)
        assert np.unique(var.workload_ids).size > np.unique(
            fixed.workload_ids).size

    def test_variable_requires_table_when_forced(self, azure, pool):
        spec = shrink(azure, pool, max_rps=5.0, duration_minutes=15, seed=1)
        with pytest.raises(ValueError, match="no variant table"):
            generate_request_trace(spec, seed=1, variable_input=True)

    def test_variable_spec_survives_json(self, azure, pool, tmp_path):
        from repro.core import ExperimentSpec

        sr = ShrinkRay(variable_input=True)
        spec = sr.run(azure, pool, max_rps=5.0, duration_minutes=15, seed=1)
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = ExperimentSpec.load(path)
        req = generate_request_trace(loaded, seed=2)
        assert req.n_requests > 0

    def test_variable_preserves_duration_fidelity(self, azure, pool):
        """Variant sampling stays inside the threshold fidelity envelope."""
        from repro.stats.distance import ks_relative_band

        sr = ShrinkRay(variable_input=True)
        spec = sr.run(azure, pool, max_rps=5.0, duration_minutes=30, seed=1)
        req = generate_request_trace(spec, seed=1)
        counts = azure.invocations_per_function.astype(float)
        mask = counts > 0
        ks = ks_relative_band(req.runtimes_ms, azure.durations_ms[mask],
                              y_weights=counts[mask])
        assert ks < 0.12


class TestMemoryAwareMapping:
    def test_memory_breaks_ties(self):
        p = make_pool([("a", 100.0, 30.0), ("b", 100.0, 500.0)])
        t = small_trace([100.0])
        m = map_functions(t, p, memory_targets=np.array([480.0]),
                          balance=False, memory_protect_top=0)
        assert m.workload_ids[0] == "b:1"
        m2 = map_functions(t, p, memory_targets=np.array([32.0]),
                           balance=False, memory_protect_top=0)
        assert m2.workload_ids[0] == "a:0"

    def test_runtime_threshold_still_respected(self):
        p = make_pool([("a", 100.0, 500.0), ("b", 200.0, 100.0)])
        t = small_trace([100.0])
        # b matches memory perfectly but is outside the threshold
        m = map_functions(t, p, memory_targets=np.array([100.0]),
                          error_threshold_pct=10, memory_protect_top=0)
        assert m.workload_ids[0] == "a:0"

    def test_validation(self):
        p = make_pool([("a", 1.0, 1.0)])
        t = small_trace([1.0, 2.0])
        with pytest.raises(ValueError, match="align"):
            map_functions(t, p, memory_targets=np.array([1.0]))
        with pytest.raises(ValueError, match="positive"):
            map_functions(t, p, memory_targets=np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="memory_weight"):
            map_functions(t, p, memory_targets=np.array([1.0, 1.0]),
                          memory_weight=-1.0)

    def test_shrinkray_memory_aware_keeps_fidelity(self, azure, pool):
        """Memory-aware selection must not hurt either distribution.

        The achievable memory gain is pool-limited (the pool's footprints
        sit left of Azure's apps, paper sec. 3.3), so the contract is
        'no regression beyond noise' on memory and 'unchanged' on
        duration -- the exact-tie-break behaviour is covered above.
        """
        from repro.stats import EmpiricalCDF, wasserstein

        target = EmpiricalCDF.from_samples(azure.memory_per_app_array())

        def dist(spec):
            mem = np.array([e.memory_mb for e in spec.entries])
            return wasserstein(EmpiricalCDF.from_samples(mem), target)

        base = shrink(azure, pool, max_rps=5.0, duration_minutes=15, seed=4)
        aware = ShrinkRay(memory_aware=True).run(
            azure, pool, max_rps=5.0, duration_minutes=15, seed=4)
        assert dist(aware) <= dist(base) * 1.15
        assert (fidelity_report(aware, azure)["invocation_duration_ks"]
                < 0.08)

    def test_shrinkray_memory_aware_needs_memory_data(self, pool):
        from repro.traces import synthetic_huawei_trace

        hw = synthetic_huawei_trace(seed=1)  # reports no memory
        with pytest.raises(ValueError, match="app memory"):
            ShrinkRay(memory_aware=True).run(
                hw, pool, max_rps=5.0, duration_minutes=15, seed=0)


class TestSpecOps:
    @pytest.fixture(scope="class")
    def spec(self, azure, pool):
        return shrink(azure, pool, max_rps=10.0, duration_minutes=20,
                      seed=6)

    def test_rescale_lowers_peak(self, spec):
        smaller = rescale_spec(spec, 2.0, seed=0)
        assert smaller.busiest_minute_rate <= 120
        assert smaller.n_functions == spec.n_functions
        assert smaller.metadata["rescaled_from_rps"] == spec.max_rps

    def test_rescale_cannot_upscale(self, spec):
        with pytest.raises(ValueError, match="not below"):
            rescale_spec(spec, 10_000.0)

    def test_merge_disjoint(self, spec):
        from repro.core import ExperimentSpec, SpecEntry

        other = ExperimentSpec(
            "o", "t2", 1.0,
            [SpecEntry("zz-f", "w:z", "pyaes", 5.0, 32.0)],
            np.full((1, spec.duration_minutes), 3, dtype=np.int64),
        )
        merged = merge_specs(spec, other)
        assert merged.n_functions == spec.n_functions + 1
        assert merged.total_requests == spec.total_requests + other.total_requests

    def test_merge_rejects_collisions(self, spec):
        with pytest.raises(ValueError, match="collide"):
            merge_specs(spec, spec)

    def test_merge_rejects_duration_mismatch(self, spec):
        from repro.core import ExperimentSpec, SpecEntry

        other = ExperimentSpec(
            "o", "t2", 1.0,
            [SpecEntry("zz-f", "w:z", "pyaes", 5.0, 32.0)],
            np.full((1, spec.duration_minutes + 1), 3, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="durations differ"):
            merge_specs(spec, other)

    def test_filter(self, spec):
        short = filter_spec(spec, lambda e: e.runtime_ms < 100.0)
        assert 0 < short.n_functions < spec.n_functions
        assert all(e.runtime_ms < 100.0 for e in short.entries)

    def test_filter_rejects_empty(self, spec):
        with pytest.raises(ValueError, match="every entry"):
            filter_spec(spec, lambda e: False)

    def test_fidelity_report(self, spec, azure):
        rep = fidelity_report(spec, azure)
        assert rep["invocation_duration_ks"] < 0.08
        assert rep["load_shape_corr"] > 0.95
        assert rep["popularity_top10pct_trace"] > 0.9
        assert rep["total_requests"] == spec.total_requests
