"""The content-addressed cache: fingerprint stability, invalidation,
corruption recovery, and concurrent-writer safety."""

import pickle
import threading

import numpy as np
import pytest

from repro.cache import (
    CACHE_DIR_ENV,
    ContentCache,
    code_version,
    fingerprint,
    resolve_cache,
)
from repro.core.spec import ExperimentSpec, SpecEntry


def small_spec():
    return ExperimentSpec(
        name="s", source_trace="t", max_rps=2.0,
        entries=[SpecEntry("f0", "pyaes:1", "pyaes", 5.0, 64.0)],
        per_minute=np.array([[3, 4]]),
        metadata={"threshold": 10.0},
    )


class TestFingerprint:
    def test_stable_across_calls(self):
        parts = ("stage", {"a": 1, "b": [1.5, None]}, np.arange(6))
        assert fingerprint(*parts) == fingerprint(*parts)

    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_parameter_change_invalidates(self):
        base = ("shrinkray", code_version(), {"threshold": 10.0}, 5)
        changed = ("shrinkray", code_version(), {"threshold": 12.5}, 5)
        assert fingerprint(*base) != fingerprint(*changed)

    def test_code_version_change_invalidates(self):
        assert fingerprint("v1", {"x": 1}) != fingerprint("v2", {"x": 1})

    def test_types_do_not_collide(self):
        assert fingerprint(1) != fingerprint("1")
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(True) != fingerprint(1)
        assert fingerprint(None) != fingerprint("None")
        assert fingerprint(["ab", "c"]) != fingerprint(["a", "bc"])

    def test_arrays_hash_content_dtype_and_shape(self):
        a = np.arange(6, dtype=np.int64)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.astype(np.int32))
        assert fingerprint(a) != fingerprint(a.reshape(2, 3))
        assert fingerprint(a) != fingerprint(a.tolist())
        # non-contiguous views hash like their contiguous copies
        m = np.arange(12).reshape(3, 4)
        assert fingerprint(m[:, ::2]) == fingerprint(m[:, ::2].copy())

    def test_object_arrays_and_dataclasses(self):
        obj = np.array(["x", None, 3], dtype=object)
        assert fingerprint(obj) == fingerprint(obj.copy())
        spec = small_spec()
        assert fingerprint(spec) == fingerprint(small_spec())
        spec.metadata["threshold"] = 99.0
        assert fingerprint(spec) != fingerprint(small_spec())

    def test_bytes_and_sets(self):
        assert fingerprint(b"ab") == fingerprint(b"ab")
        assert fingerprint(b"ab") != fingerprint("ab")
        assert fingerprint({1, 2, 3}) == fingerprint({3, 2, 1})
        assert fingerprint({1, 2}) != fingerprint([1, 2])
        assert fingerprint(frozenset({"a"})) == fingerprint({"a"})

    def test_unfingerprintable_type_rejected(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint(object())


class TestContentCache:
    def test_roundtrip(self, tmp_path):
        cache = ContentCache(tmp_path)
        key = fingerprint("artifact", 1)
        spec = small_spec()
        cache.put(key, spec)
        assert key in cache
        got = cache.get(key)
        assert got.to_dict() == spec.to_dict()
        assert cache.hits == 1

    def test_miss_raises_keyerror(self, tmp_path):
        cache = ContentCache(tmp_path)
        with pytest.raises(KeyError):
            cache.get(fingerprint("nothing"))
        assert cache.misses == 1

    def test_memoize_computes_once(self, tmp_path):
        cache = ContentCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"x": np.arange(3)}

        key = fingerprint("memo")
        v1 = cache.memoize(key, compute)
        v2 = cache.memoize(key, compute)
        assert len(calls) == 1
        np.testing.assert_array_equal(v1["x"], v2["x"])

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ContentCache(tmp_path)
        key = fingerprint("will-corrupt")
        cache.put(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"\x80garbage not a pickle")
        # corrupted entry is a miss, never a crash...
        assert cache.memoize(key, lambda: "recomputed") == "recomputed"
        # ...and the slot is repaired on the way out
        assert cache.get(key) == "recomputed"

    def test_truncated_entry_recovers(self, tmp_path):
        cache = ContentCache(tmp_path)
        key = fingerprint("will-truncate")
        cache.put(key, list(range(1000)))
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:20])  # torn write survivor
        with pytest.raises(KeyError):
            cache.get(key)
        assert not path.exists()  # bad file removed best-effort

    def test_mis_keyed_payload_rejected(self, tmp_path):
        """A payload stored under the wrong key can't satisfy a lookup."""
        cache = ContentCache(tmp_path)
        good, evil = fingerprint("good"), fingerprint("evil")
        cache.put(good, "value")
        path = cache._path(evil)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(cache._path(good).read_bytes())
        with pytest.raises(KeyError):
            cache.get(evil)

    def test_concurrent_writers_atomic(self, tmp_path):
        """Racing writers publish via atomic rename: readers always see a
        complete entry and the final value is one of the written ones."""
        key = fingerprint("contended")
        errors = []

        def writer(i):
            try:
                cache = ContentCache(tmp_path)  # own handle, same dir
                for _ in range(20):
                    cache.put(key, ("payload", i, np.arange(500)))
                    value = cache.get(key)
                    assert value[0] == "payload"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = ContentCache(tmp_path).get(key)
        assert final[0] == "payload" and final[1] in range(6)
        # no temp-file litter left behind
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_clear(self, tmp_path):
        cache = ContentCache(tmp_path)
        for i in range(4):
            cache.put(fingerprint("entry", i), i)
        assert cache.clear() == 4
        with pytest.raises(KeyError):
            cache.get(fingerprint("entry", 0))

    def test_put_failure_leaves_no_temp_litter(self, tmp_path, monkeypatch):
        cache = ContentCache(tmp_path)

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.cache.os.replace", broken_replace)
        with pytest.raises(OSError, match="disk full"):
            cache.put(fingerprint("doomed"), "value")
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_corrupt_entry_unremovable_still_a_miss(self, tmp_path,
                                                    monkeypatch):
        cache = ContentCache(tmp_path)
        key = fingerprint("stuck")
        cache.put(key, "v")
        cache._path(key).write_bytes(b"garbage")
        monkeypatch.setattr(
            "pathlib.Path.unlink",
            lambda self, *a, **k: (_ for _ in ()).throw(OSError("busy")),
        )
        with pytest.raises(KeyError):  # unlink failure never escalates
            cache.get(key)

    def test_clear_skips_undeletable_entries(self, tmp_path, monkeypatch):
        cache = ContentCache(tmp_path)
        cache.put(fingerprint("pinned"), 1)
        monkeypatch.setattr(
            "pathlib.Path.unlink",
            lambda self, *a, **k: (_ for _ in ()).throw(OSError("busy")),
        )
        assert cache.clear() == 0  # nothing removed, nothing raised

    def test_entry_payload_is_keyed_pickle(self, tmp_path):
        """The on-disk format embeds the key (defence for get())."""
        cache = ContentCache(tmp_path)
        key = fingerprint("layout")
        cache.put(key, 42)
        stored_key, value = pickle.loads(cache._path(key).read_bytes())
        assert stored_key == key and value == 42


class TestResolveCache:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache(None) is None

    def test_explicit_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        cache = resolve_cache(tmp_path / "c")
        assert isinstance(cache, ContentCache)
        assert cache.root == tmp_path / "c"

    def test_env_fallback_and_no_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert isinstance(resolve_cache(None), ContentCache)
        assert resolve_cache(None, no_cache=True) is None
        assert resolve_cache(tmp_path / "x", no_cache=True) is None
