"""Unit tests for the streaming ingestion layer (ISSUE 5 tentpole).

The differential contract lives in ``tests/test_streaming_equivalence``;
this file covers the plumbing: block iteration, malformed-input error
context, summary accounting/merging, shrink-ray integration (including
the cache and telemetry wiring), and the CLI's ``--streaming`` flags.
"""

import numpy as np
import numpy.testing as npt
import pytest

from repro import telemetry
from repro.cache import ContentCache, fingerprint
from repro.core import ShrinkRay
from repro.traces import (
    StreamingTraceSummary,
    dump_azure_day,
    iter_invocation_blocks,
    stream_azure_day,
    summarize_trace,
    synthetic_azure_trace,
)
from repro.traces.io import INVOCATIONS_FILE
from repro.traces.streaming import DEFAULT_CHUNK_ROWS
from repro.workloads import build_default_pool


@pytest.fixture(autouse=True)
def _telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


@pytest.fixture(scope="module")
def trace():
    return synthetic_azure_trace(n_functions=120, seed=7)


@pytest.fixture(scope="module")
def trace_dir(trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("azure-csv")
    dump_azure_day(trace, directory)
    return directory


# ---------------------------------------------------------------------------
# block iterator
# ---------------------------------------------------------------------------

class TestIterInvocationBlocks:
    def test_blocks_cover_all_rows(self, trace, trace_dir):
        blocks = list(iter_invocation_blocks(
            trace_dir / INVOCATIONS_FILE, chunk_rows=32))
        assert [b.n_rows for b in blocks] == [32, 32, 32, 24]
        assert blocks[0].first_line == 2  # line 1 is the header
        assert blocks[1].first_line == 34
        total = sum(int(b.per_minute.sum()) for b in blocks)
        assert total == int(trace.per_minute.sum())
        for b in blocks:
            assert b.per_minute.dtype == np.int64
            assert b.per_minute.shape == (b.n_rows, trace.n_minutes)

    def test_single_block_when_chunk_exceeds_rows(self, trace, trace_dir):
        blocks = list(iter_invocation_blocks(
            trace_dir / INVOCATIONS_FILE, chunk_rows=10_000))
        assert len(blocks) == 1
        assert blocks[0].n_rows == trace.n_functions

    def test_rejects_bad_chunk_rows(self, trace_dir):
        with pytest.raises(ValueError, match="chunk_rows"):
            list(iter_invocation_blocks(
                trace_dir / INVOCATIONS_FILE, chunk_rows=0))

    def test_empty_file(self, tmp_path):
        p = tmp_path / "inv.csv"
        p.write_text("")
        with pytest.raises(ValueError, match="empty"):
            list(iter_invocation_blocks(p))

    def test_bad_header(self, tmp_path):
        p = tmp_path / "inv.csv"
        p.write_text("Nope,Nope,Nope,Nope,1\no,a,f,http,1\n")
        with pytest.raises(ValueError, match="header"):
            list(iter_invocation_blocks(p))

    def test_header_without_minutes(self, tmp_path):
        p = tmp_path / "inv.csv"
        p.write_text("HashOwner,HashApp,HashFunction,Trigger\n")
        with pytest.raises(ValueError, match="no minute columns"):
            list(iter_invocation_blocks(p))

    def test_ragged_row_reports_line(self, tmp_path):
        p = tmp_path / "inv.csv"
        p.write_text(
            "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
            "o,a,f1,http,3,4\n"
            "o,a,f2,http,5\n"
        )
        with pytest.raises(ValueError, match=r"line 3: ragged row.*'f2'"):
            list(iter_invocation_blocks(p))

    def test_malformed_count_reports_line_and_column(self, tmp_path):
        p = tmp_path / "inv.csv"
        p.write_text(
            "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
            "o,a,f1,http,3,4\n"
            "o,a,f2,http,5,banana\n"
        )
        with pytest.raises(ValueError) as err:
            list(iter_invocation_blocks(p))
        msg = str(err.value)
        assert str(p) in msg
        assert "line 3" in msg
        assert "column 6" in msg
        assert "minute 2" in msg
        assert "'banana'" in msg


# ---------------------------------------------------------------------------
# summary accounting and merge
# ---------------------------------------------------------------------------

class TestStreamingTraceSummary:
    def test_counts_and_counters(self, trace, trace_dir):
        summary = stream_azure_day(trace_dir, chunk_rows=50)
        assert summary.rows_read == trace.n_functions
        assert summary.chunks == 3
        assert summary.functions_seen == trace.n_functions
        assert summary.functions_dropped == 0
        assert summary.total_invocations == int(trace.per_minute.sum())
        assert summary.n_apps_with_memory == len(trace.app_memory_mb)

    def test_drops_functions_without_durations(self, trace, tmp_path):
        from repro.traces.io import write_durations_csv

        dump_azure_day(trace, tmp_path)
        sub = trace.select(np.arange(1, trace.n_functions))
        write_durations_csv(sub, tmp_path / "function_durations.csv")
        summary = stream_azure_day(tmp_path)
        assert summary.functions_seen == trace.n_functions - 1
        assert summary.functions_dropped == 1
        assert summary.rows_read == trace.n_functions

    def test_no_join_raises(self, trace, tmp_path):
        from repro.traces.model import Trace

        other = Trace(
            name="disjoint",
            function_ids=np.array(["zz"]),
            app_ids=np.array(["za"]),
            durations_ms=np.array([10.0]),
            per_minute=np.ones((1, trace.n_minutes), dtype=np.int64),
            app_memory_mb={},
        )
        dump_azure_day(trace, tmp_path)
        from repro.traces.io import write_durations_csv

        write_durations_csv(other, tmp_path / "function_durations.csv")
        with pytest.raises(ValueError, match="no function has both"):
            stream_azure_day(tmp_path)

    def test_empty_invocations_raises(self, trace, tmp_path):
        dump_azure_day(trace, tmp_path)
        header = (tmp_path / INVOCATIONS_FILE).read_text().splitlines()[0]
        (tmp_path / INVOCATIONS_FILE).write_text(header + "\n")
        with pytest.raises(ValueError, match="no functions"):
            stream_azure_day(tmp_path)

    def test_merge_rejects_mismatched_params(self):
        a = StreamingTraceSummary("a", 60)
        for kwargs in ({"quantize_ms": 2.0}, {"sketch_k": 64},
                       {"topk_capacity": 16}):
            b = StreamingTraceSummary("b", 60, **kwargs)
            with pytest.raises(ValueError, match="different"):
                a.merge(b)
        with pytest.raises(ValueError, match="different"):
            a.merge(StreamingTraceSummary("c", 61))

    def test_merge_equals_single_pass(self, trace):
        whole = summarize_trace(trace, chunk_rows=64)
        left = summarize_trace(trace.select(np.arange(0, 70)),
                               chunk_rows=64)
        right = summarize_trace(
            trace.select(np.arange(70, trace.n_functions)), chunk_rows=64)
        left.merge(right)
        a = whole.aggregated_groups()
        b = left.aggregated_groups()
        npt.assert_array_equal(a[0], b[0])
        assert a[1].tobytes() == b[1].tobytes()
        assert a[2].tobytes() == b[2].tobytes()

    def test_misaligned_observe_raises(self):
        s = StreamingTraceSummary("x", 4)
        with pytest.raises(ValueError, match="align"):
            s.observe_functions(
                np.array(["f1", "f2"]), np.array([1.0]),
                np.ones((1, 4), dtype=np.int64),
            )

    def test_memory_cdf_requires_memory(self):
        s = StreamingTraceSummary("x", 4)
        with pytest.raises(ValueError, match="no app memory"):
            s.memory_cdf()

    def test_fingerprint_sensitive_to_sketch_params(self, trace):
        base = summarize_trace(trace, chunk_rows=64)
        same = summarize_trace(trace, chunk_rows=64)
        assert fingerprint(base.fingerprint_parts()) == \
            fingerprint(same.fingerprint_parts())
        for kwargs in ({"sketch_k": 256}, {"topk_capacity": 64},
                       {"quantize_ms": 10.0}):
            other = summarize_trace(trace, chunk_rows=64, **kwargs)
            assert fingerprint(base.fingerprint_parts()) != \
                fingerprint(other.fingerprint_parts()), kwargs

    def test_summarize_trace_rejects_bad_chunk_rows(self, trace):
        with pytest.raises(ValueError, match="chunk_rows"):
            summarize_trace(trace, chunk_rows=0)


# ---------------------------------------------------------------------------
# shrink-ray integration
# ---------------------------------------------------------------------------

class TestShrinkRayIntegration:
    def test_aggregate_false_rejected(self, trace):
        summary = summarize_trace(trace)
        ray = ShrinkRay(aggregate=False)
        with pytest.raises(ValueError, match="pre-aggregated"):
            ray.run(summary, build_default_pool(), max_rps=5.0,
                    duration_minutes=10, seed=0)

    def test_quantize_mismatch_rejected(self, trace):
        summary = summarize_trace(trace, quantize_ms=10.0)
        ray = ShrinkRay(quantize_ms=1.0)
        with pytest.raises(ValueError, match="quantize_ms"):
            ray.run(summary, build_default_pool(), max_rps=5.0,
                    duration_minutes=10, seed=0)

    def test_memory_aware_with_summary(self, trace):
        summary = summarize_trace(trace)
        assert summary.memory_sketch.n > 0
        spec = ShrinkRay(memory_aware=True).run(
            summary, build_default_pool(), max_rps=5.0,
            duration_minutes=10, seed=3,
        )
        assert spec.total_requests > 0

    def test_spec_cache_roundtrip(self, trace, tmp_path):
        cache = ContentCache(tmp_path / "cache")
        pool = build_default_pool()
        ray = ShrinkRay()
        summary = summarize_trace(trace, chunk_rows=32)
        cold = ray.run(summary, pool, max_rps=5.0, duration_minutes=10,
                       seed=1, cache=cache)
        rebuilt = summarize_trace(trace, chunk_rows=32)
        warm = ray.run(rebuilt, pool, max_rps=5.0, duration_minutes=10,
                       seed=1, cache=cache)
        assert cache.hits == 1
        assert warm.to_dict() == cold.to_dict()
        # a different sketch configuration must miss
        other = summarize_trace(trace, chunk_rows=32, sketch_k=256)
        ray.run(other, pool, max_rps=5.0, duration_minutes=10,
                seed=1, cache=cache)
        assert cache.hits == 1

    def test_telemetry_counters(self, trace, trace_dir):
        reg = telemetry.enable()
        summary = stream_azure_day(trace_dir, chunk_rows=40)
        ShrinkRay().run(summary, build_default_pool(), max_rps=5.0,
                        duration_minutes=10, seed=0)
        names = {c.name: c.value for c in reg.counters()}
        assert names["streaming_rows_total"] == trace.n_functions
        assert names["streaming_chunks_total"] == 3
        assert names["streaming_functions_dropped_total"] == 0
        assert names["shrinkray_streaming_runs_total"] == 1
        timers = {h.name for h in reg.histograms()}
        assert "streaming_ingest_seconds" in timers


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestStreamingCli:
    def test_streaming_flag(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "spec.json"
        rc = main([
            "shrinkray", "--trace", "azure", "--functions", "80",
            "--max-rps", "4", "--duration", "10", "--streaming",
            "--chunk-rows", "16", "--seed", "5", "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        baseline = tmp_path / "spec-mem.json"
        rc = main([
            "shrinkray", "--trace", "azure", "--functions", "80",
            "--max-rps", "4", "--duration", "10", "--seed", "5",
            "--out", str(baseline),
        ])
        assert rc == 0
        import json

        a = json.loads(out.read_text())
        b = json.loads(baseline.read_text())
        assert a["per_minute"] == b["per_minute"]

    def test_streaming_rejects_bad_chunk_rows(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "shrinkray", "--trace", "azure", "--functions", "20",
                "--max-rps", "2", "--duration", "5", "--streaming",
                "--chunk-rows", "0",
                "--out", str(tmp_path / "s.json"),
            ])

    def test_streaming_from_directory(self, trace, trace_dir, tmp_path):
        from repro.cli import main

        out = tmp_path / "spec.json"
        rc = main([
            "shrinkray", "--trace", str(trace_dir), "--max-rps", "4",
            "--duration", "10", "--streaming", "--chunk-rows", "64",
            "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()

    def test_default_chunk_rows_constant(self):
        assert DEFAULT_CHUNK_ROWS == 65_536
