"""Tests for repro.stats: sampling, cv, popularity, distance, histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    EmpiricalCDF,
    cdf_series,
    coefficient_of_variation,
    cv_cdf_series,
    ks_distance,
    ks_statistic_samples,
    log_bins,
    popularity_change_cdf,
    popularity_curve,
    popularity_shares,
    smirnov_sample,
    wasserstein,
)
from repro.stats.histograms import format_cdf_table
from repro.stats.sampling import stratified_uniform


class TestSmirnovSampling:
    def test_samples_follow_target_cdf(self):
        rng = np.random.default_rng(7)
        target = EmpiricalCDF.from_samples(rng.lognormal(2.0, 1.5, size=2000))
        sample = smirnov_sample(target, 20000, np.random.default_rng(11))
        got = EmpiricalCDF.from_samples(sample)
        assert ks_distance(target, got) < 0.02

    def test_sample_range_bounded_by_support(self):
        target = EmpiricalCDF.from_samples([5.0, 10.0, 20.0])
        s = smirnov_sample(target, 1000, np.random.default_rng(0))
        assert s.min() >= 5.0 and s.max() <= 20.0

    def test_deterministic_under_seed(self):
        target = EmpiricalCDF.from_samples([1.0, 2.0, 3.0])
        a = smirnov_sample(target, 100, np.random.default_rng(42))
        b = smirnov_sample(target, 100, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_antithetic_pairs(self):
        target = EmpiricalCDF.from_samples(np.arange(1, 101, dtype=float))
        s = smirnov_sample(target, 2000, np.random.default_rng(1), antithetic=True)
        # Antithetic pairing symmetrises the sample mean around the median.
        assert s.mean() == pytest.approx(target.mean(), rel=0.05)

    def test_rejects_nonpositive_n(self):
        target = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(ValueError):
            smirnov_sample(target, 0, np.random.default_rng(0))

    def test_stratified_uniform_low_discrepancy(self):
        u = stratified_uniform(1000, np.random.default_rng(3))
        assert u.shape == (1000,)
        sorted_u = np.sort(u)
        grid = (np.arange(1000) + 0.5) / 1000
        assert np.max(np.abs(sorted_u - grid)) <= 1.0 / 1000 + 1e-12

    def test_stratified_uniform_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            stratified_uniform(0, np.random.default_rng(0))


class TestCV:
    def test_constant_rows_have_zero_cv(self):
        vals = np.full((5, 14), 3.0)
        np.testing.assert_allclose(coefficient_of_variation(vals), 0.0)

    def test_known_cv(self):
        row = np.array([[1.0, 3.0]])  # mean 2, std 1
        assert coefficient_of_variation(row)[0] == pytest.approx(0.5)

    def test_zero_mean_zero_std_is_zero(self):
        assert coefficient_of_variation(np.zeros((1, 4)))[0] == 0.0

    def test_zero_mean_nonzero_std_is_inf(self):
        cv = coefficient_of_variation(np.array([[-1.0, 1.0]]))
        assert np.isinf(cv[0])

    def test_cdf_series_clipped_window(self):
        cv = np.array([0.1, 0.5, 0.9, 5.0])
        xs, fs = cv_cdf_series(cv, max_cv=3.0, n=100)
        assert xs[-1] == 3.0
        assert fs[-1] == pytest.approx(0.75)  # the 5.0 stays beyond the window

    def test_cdf_series_rejects_all_inf(self):
        with pytest.raises(ValueError):
            cv_cdf_series(np.array([np.inf]))


class TestPopularity:
    def test_shares_sum_to_one(self):
        s = popularity_shares([1, 2, 3, 4])
        assert s.sum() == pytest.approx(1.0)

    def test_shares_reject_all_zero(self):
        with pytest.raises(ValueError):
            popularity_shares([0, 0])

    def test_curve_is_concave_increasing(self):
        rng = np.random.default_rng(5)
        inv = rng.pareto(1.1, size=500) + 1
        x, y = popularity_curve(inv)
        assert y[-1] == pytest.approx(1.0)
        assert np.all(np.diff(y) >= -1e-12)
        # most-popular-first ordering => increments are non-increasing
        assert np.all(np.diff(np.diff(y)) <= 1e-9)

    def test_curve_skew(self):
        # one dominant function: first point captures almost everything
        x, y = popularity_curve([10_000, 1, 1, 1, 1])
        assert y[0] > 0.99

    def test_popularity_change_zero_for_singleton_groups(self):
        shares = np.array([0.5, 0.3, 0.2])
        keys = np.array([1, 2, 3])
        changes, probs = popularity_change_cdf(shares, keys, shares, keys)
        np.testing.assert_allclose(changes, 0.0)
        assert probs[-1] == 1.0

    def test_popularity_change_aggregation(self):
        orig_shares = np.array([0.4, 0.1, 0.5])
        orig_keys = np.array([10, 10, 20])
        agg_shares = np.array([0.5, 0.5])  # group 10 sums 0.4+0.1
        agg_keys = np.array([10, 20])
        changes, _ = popularity_change_cdf(
            orig_shares, orig_keys, agg_shares, agg_keys
        )
        np.testing.assert_allclose(np.sort(changes), [0.0, 0.1])

    def test_popularity_change_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="aggregated key"):
            popularity_change_cdf(
                np.array([1.0]), np.array([1]), np.array([1.0]), np.array([2])
            )


class TestDistances:
    def test_ks_identical_zero(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0])
        assert ks_distance(cdf, cdf) == 0.0

    def test_ks_disjoint_is_one(self):
        a = EmpiricalCDF.from_samples([1.0, 2.0])
        b = EmpiricalCDF.from_samples([10.0, 20.0])
        assert ks_distance(a, b) == pytest.approx(1.0)

    def test_ks_matches_scipy(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=300), rng.normal(0.5, 1.2, size=400)
        from scipy.stats import ks_2samp

        expected = ks_2samp(x, y).statistic
        assert ks_statistic_samples(x, y) == pytest.approx(expected, abs=1e-12)

    def test_wasserstein_matches_scipy(self):
        rng = np.random.default_rng(3)
        x, y = rng.exponential(2.0, 200), rng.exponential(3.0, 250)
        from scipy.stats import wasserstein_distance

        a = EmpiricalCDF.from_samples(x)
        b = EmpiricalCDF.from_samples(y)
        assert wasserstein(a, b) == pytest.approx(
            wasserstein_distance(x, y), rel=1e-9
        )

    def test_wasserstein_symmetry(self):
        a = EmpiricalCDF.from_samples([1.0, 5.0])
        b = EmpiricalCDF.from_samples([2.0, 3.0])
        assert wasserstein(a, b) == pytest.approx(wasserstein(b, a))

    @given(
        st.lists(st.floats(0.1, 1e4), min_size=2, max_size=40),
        st.lists(st.floats(0.1, 1e4), min_size=2, max_size=40),
    )
    @settings(max_examples=60)
    def test_ks_bounds(self, x, y):
        d = ks_statistic_samples(x, y)
        assert 0.0 <= d <= 1.0


class TestHistograms:
    def test_log_bins_cover_range(self):
        edges = log_bins(1.0, 1000.0, n=30)
        assert edges.size == 31
        assert edges[0] == 1.0 and edges[-1] == pytest.approx(1000.0)

    def test_log_bins_reject_bad_range(self):
        with pytest.raises(ValueError):
            log_bins(0.0, 10.0)
        with pytest.raises(ValueError):
            log_bins(10.0, 1.0)

    def test_cdf_series_shapes(self):
        xs, fs = cdf_series([1.0, 10.0, 100.0], n=50)
        assert xs.shape == (50,) and fs.shape == (50,)

    def test_format_cdf_table_contains_labels(self):
        xs, fs = cdf_series([1.0, 2.0, 4.0, 8.0], n=64)
        out = format_cdf_table({"azure": (xs, fs), "faasrail": (xs, fs)})
        assert "azure" in out and "faasrail" in out and "p50" in out
