"""Differential fuzz of the simulator engines (ISSUE 7 satellite).

A small random sweep runs in CI; configurations that exercised
historically delicate paths during development are pinned verbatim, so
the exact tuples keep running forever regardless of what the random
sweep happens to draw.
"""

import dataclasses

import pytest

from repro.platform.diffsim import (
    FuzzConfig,
    compare,
    format_reproducer,
    fuzz,
    main,
    random_config,
    shrink,
)

import numpy as np


def _cfg(**overrides):
    base = dict(
        seed=0,
        n_requests=120,
        n_workloads=4,
        horizon_s=5.0,
        n_nodes=2,
        node_memory_mb=1024.0,
        keepalive="fixed",
        scheduler="random",
        crash_rate=0.0,
        service_time_cv=0.0,
        queue_timeout_s=None,
        autoscale=False,
        track_memory=False,
        quantize=False,
        batch="scalar",
    )
    base.update(overrides)
    return FuzzConfig(**base)


#: Configurations that stress the paths where the engines could
#: plausibly diverge; each is pinned because its shape exposed a design
#: trap while the array engine was built.
REGRESSION_CONFIGS = [
    # bulk slab infeasible on one tight node: the vectorised path must
    # detect it, rewind the scheduler RNG, and replay through the
    # scalar loop -- including the queue-timeout drops
    _cfg(seed=4, n_requests=300, horizon_s=0.5, n_nodes=1,
         node_memory_mb=512.0, keepalive="none", queue_timeout_s=3.0,
         batch="bulk"),
    # feasible bulk slab followed by scalar traffic: outstanding bulk
    # completions must materialise into heap events with the reference
    # engine's exact sequence numbers
    _cfg(seed=5, n_requests=200, node_memory_mb=4096.0,
         keepalive="none", batch="mixed"),
    # quantized arrivals: equal-timestamp collisions exercise the
    # (time, sequence) tie-breaking that random arrivals never hit
    _cfg(seed=6, n_requests=250, quantize=True, batch="bulk",
         keepalive="none", node_memory_mb=4096.0),
    # deadlock: no queue timeout and a node too small for the backlog;
    # both engines must raise the same RuntimeError with the same
    # partial records
    _cfg(seed=7, n_requests=200, horizon_s=0.5, n_nodes=1,
         node_memory_mb=512.0, keepalive="fixed"),
    # every stateful policy at once on the scalar path, traces compared
    _cfg(seed=8, n_requests=300, horizon_s=30.0, keepalive="histogram",
         crash_rate=0.1, service_time_cv=0.8, autoscale=True,
         track_memory=True, queue_timeout_s=5.0),
    # ISSUE 8 envelope: bulk keep-alive replay with a short TTL so warm
    # reuses and expiries interleave inside one slab -- exercises the
    # merged sequence assignment and per-pool creation-key replay
    _cfg(seed=9, n_requests=400, horizon_s=8.0, keepalive="fixed",
         keepalive_ttl=0.2, node_memory_mb=8192.0, batch="bulk"),
    # jittered service times on the bulk path: one lognormal array draw
    # must be stream-equal to the scalar loop's per-request draws, and
    # the rewind on infeasible slabs must restore the jitter RNG too
    _cfg(seed=10, n_requests=300, service_time_cv=0.8, keepalive="fixed",
         keepalive_ttl=1.0, node_memory_mb=2048.0, batch="bulk"),
    # tiny chunks: every slab boundary forces a _BulkTail carry, so idle
    # stacks and outstanding completions cross chunk edges constantly
    _cfg(seed=11, n_requests=350, horizon_s=6.0, keepalive="fixed",
         keepalive_ttl=0.5, service_time_cv=0.6,
         node_memory_mb=8192.0, batch="chunked", chunk_rows=1),
    # chunked + hash-affinity spill: the busy-cap trajectory check must
    # agree with the scalar spill decisions across slab boundaries
    _cfg(seed=12, n_requests=400, horizon_s=4.0, scheduler="hash",
         keepalive="fixed", keepalive_ttl=1.0, node_memory_mb=8192.0,
         batch="chunked", chunk_rows=7),
    # zero-TTL FixedKeepAlive must route to the teardown commit, not the
    # keep-alive replay, under chunked submission
    _cfg(seed=13, n_requests=200, keepalive="fixed", keepalive_ttl=0.0,
         service_time_cv=0.4, node_memory_mb=4096.0,
         batch="chunked", chunk_rows=64),
    # ISSUE 10 CPU axes: contended zero-TTL slab takes the bulk
    # teardown route, whose per-node run-queue replay must reproduce
    # the scalar dilation cascade (including (end, seq) tie-breaks)
    _cfg(seed=14, n_requests=300, horizon_s=4.0, keepalive="none",
         node_memory_mb=4096.0, batch="bulk", cores=1, quantum=0.02),
    # CPU model + positive TTL: bulk ineligible by design, so
    # invoke_many must fall back to the scalar path and still match
    _cfg(seed=15, n_requests=250, horizon_s=4.0, keepalive="fixed",
         keepalive_ttl=0.5, node_memory_mb=4096.0, batch="bulk",
         cores=2, quantum=0.005),
    # weighted fair share with unequal per-workload weights: the
    # node's running weight total folds in event order on both engines
    _cfg(seed=16, n_requests=300, horizon_s=4.0, n_workloads=6,
         keepalive="hybrid", node_memory_mb=4096.0, batch="mixed",
         cores=2, cpu_policy="fair"),
    # shortest-task-first under tiny chunks: every slab edge carries a
    # contended tail whose final weight restores at drain
    _cfg(seed=17, n_requests=300, horizon_s=3.0, keepalive="none",
         node_memory_mb=8192.0, batch="chunked", chunk_rows=1,
         cores=1, cpu_policy="stf", quantum=0.1),
    # contention + jitter + crashes: the crash path must release CPU
    # weight exactly once, and the jitter stream must stay aligned
    _cfg(seed=18, n_requests=300, horizon_s=6.0, keepalive="fixed",
         keepalive_ttl=0.3, crash_rate=0.2, service_time_cv=0.6,
         node_memory_mb=2048.0, cores=2, cpu_policy="fifo"),
    # hybrid-histogram keep-alive learning mid-run on the scalar path,
    # with traces compared event for event
    _cfg(seed=19, n_requests=350, horizon_s=10.0, keepalive="hybrid",
         track_memory=True, node_memory_mb=1024.0, batch="scalar",
         cores=4, cpu_policy="fair"),
]


@pytest.mark.parametrize("cfg", REGRESSION_CONFIGS,
                         ids=lambda c: f"seed{c.seed}-{c.batch}")
def test_pinned_regressions(cfg):
    mismatch = compare(cfg)
    assert mismatch is None, format_reproducer(cfg, mismatch)


def test_random_sweep_agrees():
    failures = fuzz(n_tuples=15, seed=0)
    assert not failures, "\n".join(
        format_reproducer(cfg, mismatch) for cfg, mismatch in failures
    )


def test_random_config_is_always_constructible():
    rng = np.random.default_rng(0)
    for _ in range(200):
        cfg = random_config(rng)
        assert cfg.n_requests >= 1
        assert cfg.node_memory_mb >= 512.0  # >= largest workload


def test_shrink_minimises_against_synthetic_predicate():
    """The shrinker strips every irrelevant axis while the failure
    predicate holds, so real reproducers come out minimal."""
    start = _cfg(n_requests=256, n_workloads=7, crash_rate=0.5,
                 service_time_cv=0.8, autoscale=True, track_memory=True,
                 quantize=True, queue_timeout_s=5.0, n_nodes=4,
                 scheduler="power-of-two", keepalive="histogram",
                 batch="mixed")

    # synthetic bug: "fails" whenever there are >= 10 requests AND a
    # crash hook -- everything else should shrink away
    def still_fails(cfg):
        return cfg.n_requests >= 10 and cfg.crash_rate > 0

    small = shrink(start, still_fails)
    assert still_fails(small)
    assert small.n_requests == 10
    assert small.crash_rate == 0.5  # load-bearing axis is preserved
    assert small.n_workloads == 1
    assert small.scheduler == "least-loaded"
    assert small.keepalive == "none"
    assert small.n_nodes == 1
    assert small.batch == "scalar"
    assert not small.autoscale and not small.track_memory
    assert small.service_time_cv == 0.0
    assert small.queue_timeout_s is None


def test_shrink_of_passing_config_is_identity_fixpoint():
    cfg = _cfg(n_requests=5)
    assert shrink(cfg, lambda c: False) == cfg


def test_shrink_survives_raising_candidates():
    # a candidate that raises must count as "not a simpler reproducer"
    def still_fails(cfg):
        if cfg.n_requests < 64:
            raise RuntimeError("candidate exploded")
        return cfg.crash_rate > 0

    small = shrink(_cfg(n_requests=128, crash_rate=0.5), still_fails)
    assert still_fails(small)
    assert small.n_requests == 64


def test_config_validation():
    with pytest.raises(ValueError, match="keepalive"):
        _cfg(keepalive="bogus")
    with pytest.raises(ValueError, match="scheduler"):
        _cfg(scheduler="bogus")
    with pytest.raises(ValueError, match="batch"):
        _cfg(batch="bogus")
    with pytest.raises(ValueError, match="cpu policy"):
        _cfg(cpu_policy="bogus")
    with pytest.raises(ValueError, match="cores"):
        _cfg(cores=-1)
    with pytest.raises(ValueError, match="quantum"):
        _cfg(quantum=0.0)


def test_shrinker_strips_cpu_axes():
    """A failure that does not depend on the CPU model shrinks to
    cores=0 / cpu_policy='fifo', keeping reproducers minimal."""

    def still_fails(cfg):
        return cfg.n_requests >= 10

    small = shrink(
        _cfg(n_requests=64, cores=4, cpu_policy="stf", quantum=0.1),
        still_fails,
    )
    assert small.cores == 0
    assert small.cpu_policy == "fifo"


def test_cli_reports_ok(capsys):
    assert main(["--tuples", "3", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "byte-identical on 3 random configurations" in out


def test_format_reproducer_is_paste_ready():
    cfg = _cfg()
    text = format_reproducer(cfg, "records diverges")
    assert "FuzzConfig(" in text and "records diverges" in text
    # the printed tuple reconstructs the exact config
    rebuilt = eval(text.split("\n")[-1].strip())  # noqa: S307 - test only
    assert rebuilt == cfg
    assert dataclasses.asdict(rebuilt) == dataclasses.asdict(cfg)
