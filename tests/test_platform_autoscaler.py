"""Tests for autoscaling, queue timeouts, and loadgen IO."""

import numpy as np
import pytest

from repro.platform import (
    FaaSCluster,
    NoKeepAlive,
    ReactiveAutoscaler,
    WorkloadProfile,
)


def profiles():
    return {
        "fast": WorkloadProfile("fast", runtime_ms=50.0, memory_mb=100.0),
        "slow": WorkloadProfile("slow", runtime_ms=5_000.0, memory_mb=200.0),
    }


class TestAutoscalerPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReactiveAutoscaler(min_nodes=0)
        with pytest.raises(ValueError):
            ReactiveAutoscaler(min_nodes=5, max_nodes=2)
        with pytest.raises(ValueError):
            ReactiveAutoscaler(target_busy_per_node=0)
        with pytest.raises(ValueError):
            ReactiveAutoscaler(low_watermark=1.5, high_watermark=1.2)
        with pytest.raises(ValueError):
            ReactiveAutoscaler(evaluate_every_s=0)

    def test_scales_up_on_overload(self):
        from repro.platform.simulator import Node

        policy = ReactiveAutoscaler(target_busy_per_node=2.0,
                                    evaluate_every_s=1.0)
        nodes = [Node(0, 1000.0)]
        nodes[0].busy_count = 10
        assert policy.decide(0.0, nodes) == 2
        assert policy.events == [(0.0, 2)]

    def test_rate_limited(self):
        from repro.platform.simulator import Node

        policy = ReactiveAutoscaler(target_busy_per_node=2.0,
                                    evaluate_every_s=30.0)
        nodes = [Node(0, 1000.0)]
        nodes[0].busy_count = 10
        assert policy.decide(0.0, nodes) == 2
        assert policy.decide(5.0, nodes) == 1  # too soon: keep current n

    def test_scale_down_needs_grace(self):
        from repro.platform.simulator import Node

        policy = ReactiveAutoscaler(
            min_nodes=1, target_busy_per_node=4.0,
            evaluate_every_s=1.0, scale_down_grace_s=100.0)
        nodes = [Node(0, 1000.0), Node(1, 1000.0)]  # idle cluster
        assert policy.decide(0.0, nodes) == 2     # starts the grace clock
        assert policy.decide(50.0, nodes) == 2    # still within grace
        assert policy.decide(150.0, nodes) == 1   # grace elapsed

    def test_never_below_min(self):
        from repro.platform.simulator import Node

        policy = ReactiveAutoscaler(min_nodes=2, evaluate_every_s=1.0,
                                    scale_down_grace_s=0.0)
        nodes = [Node(0, 1000.0), Node(1, 1000.0)]
        assert policy.decide(0.0, nodes) == 2


class TestElasticCluster:
    def test_cluster_grows_under_burst(self):
        policy = ReactiveAutoscaler(
            min_nodes=1, max_nodes=8, target_busy_per_node=2.0,
            evaluate_every_s=0.5)
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=8_000.0,
                        autoscaler=policy)
        # 30 overlapping slow invocations overwhelm one node
        for k in range(30):
            c.invoke(k * 1.0, "slow")
        c.drain()
        assert len(c.nodes) > 1
        assert policy.events  # scale-ups recorded

    def test_cluster_shrinks_after_burst(self):
        policy = ReactiveAutoscaler(
            min_nodes=1, max_nodes=8, target_busy_per_node=1.0,
            evaluate_every_s=1.0, scale_down_grace_s=5.0)
        c = FaaSCluster(profiles(), n_nodes=4, node_memory_mb=8_000.0,
                        keepalive=NoKeepAlive(), autoscaler=policy)
        # a long tail of sparse fast requests: cluster should contract
        for k in range(120):
            c.invoke(k * 2.0, "fast")
        c.drain()
        assert len(c.nodes) < 4

    def test_records_survive_topology_changes(self):
        policy = ReactiveAutoscaler(min_nodes=1, max_nodes=4,
                                    target_busy_per_node=1.0,
                                    evaluate_every_s=0.5,
                                    scale_down_grace_s=2.0)
        c = FaaSCluster(profiles(), n_nodes=2, node_memory_mb=8_000.0,
                        autoscaler=policy)
        rng = np.random.default_rng(0)
        t = 0.0
        for _ in range(200):
            t += float(rng.exponential(0.5))
            c.invoke(t, "fast" if rng.random() < 0.8 else "slow")
        records = c.drain()
        assert len(records) == 200
        for r in records:
            assert r.end_s >= r.start_s >= r.arrival_s


class TestQueueTimeout:
    def test_drops_after_timeout(self):
        profs = {"big": WorkloadProfile("big", runtime_ms=10_000.0,
                                        memory_mb=900.0)}
        c = FaaSCluster(profs, n_nodes=1, node_memory_mb=1_000.0,
                        keepalive=NoKeepAlive(), queue_timeout_s=1.0)
        c.invoke(0.0, "big")     # occupies the node for 10s
        c.invoke(0.1, "big")     # queued; will exceed the 1s deadline
        records = c.drain()
        assert len(records) == 1
        assert len(c.dropped) == 1
        assert c.dropped[0][1] == "big"

    def test_within_timeout_still_served(self):
        profs = {"quick": WorkloadProfile("quick", runtime_ms=200.0,
                                          memory_mb=900.0)}
        c = FaaSCluster(profs, n_nodes=1, node_memory_mb=1_000.0,
                        keepalive=NoKeepAlive(), queue_timeout_s=5.0)
        c.invoke(0.0, "quick")
        c.invoke(0.1, "quick")  # waits ~0.1s, inside the deadline
        records = c.drain()
        assert len(records) == 2
        assert not c.dropped

    def test_validation(self):
        with pytest.raises(ValueError):
            FaaSCluster(profiles(), queue_timeout_s=0.0)


class TestHuaweiPublic:
    def test_azure_like_profile(self):
        from repro.traces import (
            invocation_duration_cdf,
            synthetic_huawei_public_trace,
        )

        t = synthetic_huawei_public_trace(n_functions=1500, seed=2)
        assert t.n_functions == 1500
        frac_fns = (t.durations_ms < 1000.0).mean()
        assert 0.5 <= frac_fns <= 0.75  # slightly faster than Azure
        w = invocation_duration_cdf(t)(1000.0)
        assert w > frac_fns  # popularity skews short, like Azure

    def test_pipeline_compatible(self):
        from repro.core import shrink
        from repro.traces import synthetic_huawei_public_trace
        from repro.workloads import build_default_pool

        t = synthetic_huawei_public_trace(n_functions=600, seed=3)
        spec = shrink(t, build_default_pool(), max_rps=5.0,
                      duration_minutes=10, seed=3)
        assert spec.total_requests > 0

    def test_validation(self):
        from repro.traces import synthetic_huawei_public_trace

        with pytest.raises(ValueError):
            synthetic_huawei_public_trace(n_functions=0)


class TestRequestTraceIO:
    @pytest.fixture(scope="class")
    def trace(self):
        from repro.core import shrink
        from repro.loadgen import generate_request_trace
        from repro.traces import synthetic_azure_trace
        from repro.workloads import build_default_pool

        azure = synthetic_azure_trace(n_functions=400, seed=8)
        spec = shrink(azure, build_default_pool(), max_rps=3.0,
                      duration_minutes=5, seed=8)
        return generate_request_trace(spec, seed=8)

    def test_csv_roundtrip(self, trace, tmp_path):
        from repro.loadgen import (
            load_request_trace_csv,
            save_request_trace_csv,
        )

        path = tmp_path / "req.csv"
        save_request_trace_csv(trace, path)
        loaded = load_request_trace_csv(path)
        assert loaded.n_requests == trace.n_requests
        np.testing.assert_allclose(loaded.timestamps_s, trace.timestamps_s,
                                   atol=1e-6)
        np.testing.assert_array_equal(loaded.workload_ids,
                                      trace.workload_ids)

    def test_npz_roundtrip(self, trace, tmp_path):
        from repro.loadgen import (
            load_request_trace_npz,
            save_request_trace_npz,
        )

        path = tmp_path / "req.npz"
        save_request_trace_npz(trace, path)
        loaded = load_request_trace_npz(path)
        np.testing.assert_array_equal(loaded.timestamps_s,
                                      trace.timestamps_s)
        np.testing.assert_array_equal(loaded.families, trace.families)

    def test_csv_header_guard(self, tmp_path):
        from repro.loadgen import load_request_trace_csv

        path = tmp_path / "bad.csv"
        path.write_text("wrong,header\n1,2\n")
        with pytest.raises(ValueError, match="header"):
            load_request_trace_csv(path)

    def test_csv_empty_guard(self, tmp_path):
        from repro.loadgen import load_request_trace_csv

        path = tmp_path / "empty.csv"
        path.write_text(
            "timestamp_s,workload_id,function_id,runtime_ms,family\n")
        with pytest.raises(ValueError, match="no requests"):
            load_request_trace_csv(path)

    def test_npz_missing_arrays_guard(self, tmp_path):
        from repro.loadgen import load_request_trace_npz

        path = tmp_path / "bad.npz"
        np.savez_compressed(path, timestamps_s=np.array([1.0]))
        with pytest.raises(ValueError, match="missing arrays"):
            load_request_trace_npz(path)

    def test_csv_rejects_unsorted_timestamps_with_path(self, tmp_path):
        from repro.loadgen import load_request_trace_csv

        path = tmp_path / "unsorted.csv"
        path.write_text(
            "timestamp_s,workload_id,function_id,runtime_ms,family\n"
            "2.0,w,f,1.0,x\n"
            "1.0,w,f,1.0,x\n"
        )
        with pytest.raises(ValueError, match="unsorted.csv.*ascending"):
            load_request_trace_csv(path)

    def test_csv_rejects_nan_and_negative_timestamps(self, tmp_path):
        from repro.loadgen import load_request_trace_csv

        header = "timestamp_s,workload_id,function_id,runtime_ms,family\n"
        path = tmp_path / "nan.csv"
        path.write_text(header + "nan,w,f,1.0,x\n")
        with pytest.raises(ValueError, match="finite"):
            load_request_trace_csv(path)
        path = tmp_path / "neg.csv"
        path.write_text(header + "-1.0,w,f,1.0,x\n")
        with pytest.raises(ValueError, match="non-negative"):
            load_request_trace_csv(path)

    def test_csv_rejects_non_numeric_columns(self, tmp_path):
        from repro.loadgen import load_request_trace_csv

        path = tmp_path / "junk.csv"
        path.write_text(
            "timestamp_s,workload_id,function_id,runtime_ms,family\n"
            "soon,w,f,1.0,x\n"
        )
        with pytest.raises(ValueError, match="non-numeric"):
            load_request_trace_csv(path)

    def test_csv_rejects_short_rows(self, tmp_path):
        from repro.loadgen import load_request_trace_csv

        path = tmp_path / "short.csv"
        path.write_text(
            "timestamp_s,workload_id,function_id,runtime_ms,family\n"
            "1.0,w\n"
        )
        with pytest.raises(ValueError, match="missing columns"):
            load_request_trace_csv(path)

    def test_npz_rejects_mismatched_lengths(self, tmp_path):
        from repro.loadgen import load_request_trace_npz

        path = tmp_path / "mismatch.npz"
        np.savez_compressed(
            path,
            timestamps_s=np.array([1.0, 2.0]),
            workload_ids=np.array(["w"]),
            function_ids=np.array(["f"]),
            runtimes_ms=np.array([1.0]),
            families=np.array(["x"]),
        )
        with pytest.raises(ValueError, match="mismatched lengths"):
            load_request_trace_npz(path)
