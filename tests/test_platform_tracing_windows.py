"""Tests for platform tracing, the new schedulers, and window selection."""

import numpy as np
import pytest

from repro.platform import (
    FaaSCluster,
    FixedKeepAlive,
    LocalityAwareScheduler,
    NoKeepAlive,
    PlatformEvent,
    PlatformTracer,
    PowerOfTwoScheduler,
    WorkloadProfile,
    lifecycle_summary,
)
from repro.traces import (
    Trace,
    find_burstiest_window,
    find_busiest_window,
    find_quietest_window,
    window_stats,
)


def profiles():
    return {
        "fast": WorkloadProfile("fast", runtime_ms=10.0, memory_mb=100.0),
        "big": WorkloadProfile("big", runtime_ms=10.0, memory_mb=900.0),
    }


class TestTracer:
    def test_creation_and_reuse_events(self):
        tracer = PlatformTracer()
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=2000.0,
                        keepalive=FixedKeepAlive(60.0), tracer=tracer)
        c.invoke(0.0, "fast")
        c.invoke(1.0, "fast")
        c.drain()
        assert len(tracer.of_kind("sandbox_created")) == 1
        assert len(tracer.of_kind("sandbox_reused")) == 1

    def test_expiry_event(self):
        tracer = PlatformTracer()
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=2000.0,
                        keepalive=FixedKeepAlive(5.0), tracer=tracer)
        c.invoke(0.0, "fast")
        c.invoke(100.0, "fast")
        c.drain()
        assert len(tracer.of_kind("sandbox_expired")) == 2

    def test_eviction_event(self):
        tracer = PlatformTracer()
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=950.0,
                        keepalive=FixedKeepAlive(3600.0), tracer=tracer)
        c.invoke(0.0, "fast")
        c.invoke(1.0, "big")  # 100 + 900 > 950: must evict fast's sandbox
        c.drain()
        ev = tracer.of_kind("sandbox_evicted")
        assert len(ev) == 1
        assert ev[0].workload_id == "fast"

    def test_queued_and_dropped_events(self):
        tracer = PlatformTracer()
        profs = {"big": WorkloadProfile("big", runtime_ms=10_000.0,
                                        memory_mb=900.0)}
        c = FaaSCluster(profs, n_nodes=1, node_memory_mb=1000.0,
                        keepalive=NoKeepAlive(), queue_timeout_s=1.0,
                        tracer=tracer)
        c.invoke(0.0, "big")
        c.invoke(0.1, "big")
        c.drain()
        assert len(tracer.of_kind("request_queued")) == 1
        assert len(tracer.of_kind("request_dropped")) == 1

    def test_lifecycle_summary(self):
        tracer = PlatformTracer()
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=2000.0,
                        keepalive=FixedKeepAlive(60.0), tracer=tracer)
        for t in (0.0, 1.0, 2.0, 3.0):
            c.invoke(t, "fast")
        c.drain()
        s = lifecycle_summary(tracer)
        assert s["sandbox_created"] == 1
        assert s["sandbox_reused"] == 3
        assert s["reuse_ratio"] == 3.0
        assert s["eviction_rate"] == 0.0

    def test_event_validation(self):
        with pytest.raises(ValueError, match="event kind"):
            PlatformEvent(0.0, "bogus", 0, "w")
        with pytest.raises(ValueError, match="event kind"):
            PlatformTracer().of_kind("bogus")

    def test_no_tracer_is_default(self):
        c = FaaSCluster(profiles(), n_nodes=1, node_memory_mb=2000.0)
        c.invoke(0.0, "fast")
        c.drain()
        assert c.tracer is None


class TestNewSchedulers:
    def _nodes(self, loads, warm=None):
        from repro.platform.simulator import Node, _Sandbox

        nodes = [Node(i, 1000.0) for i in range(len(loads))]
        for n, load in zip(nodes, loads):
            n.busy_count = load
        for k, wid in (warm or {}).items():
            nodes[k].idle[wid] = [_Sandbox(0, wid, 10.0)]
        return nodes

    def test_power_of_two_prefers_less_busy(self):
        nodes = self._nodes([10, 0, 10, 10])
        picks = [PowerOfTwoScheduler(seed=s).pick(nodes, "w")
                 for s in range(40)]
        # node 1 wins whenever probed; it must dominate the picks
        assert picks.count(1) > 10
        # and no pick is ever a *more* busy node than both probes allow
        assert all(0 <= p < 4 for p in picks)

    def test_power_of_two_single_node(self):
        nodes = self._nodes([5])
        assert PowerOfTwoScheduler().pick(nodes, "w") == 0

    def test_locality_prefers_warm_node(self):
        nodes = self._nodes([0, 3, 0], warm={1: "w"})
        # node 1 holds a warm sandbox for w -> chosen despite load
        assert LocalityAwareScheduler().pick(nodes, "w") == 1

    def test_locality_falls_back_to_least_busy(self):
        nodes = self._nodes([2, 1, 3])
        assert LocalityAwareScheduler().pick(nodes, "w") == 1

    def test_locality_improves_warm_rate_end_to_end(self):
        rng = np.random.default_rng(0)
        profs = {f"w{i}": WorkloadProfile(f"w{i}", 50.0, 200.0)
                 for i in range(20)}

        def run(scheduler):
            c = FaaSCluster(profs, n_nodes=4, node_memory_mb=1200.0,
                            keepalive=FixedKeepAlive(600.0),
                            scheduler=scheduler)
            t = 0.0
            r = np.random.default_rng(1)
            for _ in range(600):
                t += float(r.exponential(0.2))
                c.invoke(t, f"w{int(r.integers(0, 20))}")
            recs = c.drain()
            return np.mean([rec.cold for rec in recs])

        from repro.platform import LeastLoadedScheduler

        cold_locality = run(LocalityAwareScheduler())
        cold_least = run(LeastLoadedScheduler())
        assert cold_locality <= cold_least
        del rng


class TestWindows:
    @pytest.fixture(scope="class")
    def trace(self):
        n, minutes = 6, 120
        per_minute = np.ones((n, minutes), dtype=np.int64)
        per_minute[:, 40:50] = 30          # busy plateau
        per_minute[0, 80] = 400            # one extreme burst minute
        per_minute[:, 100:110] = 0         # quiet stretch
        return Trace(
            "w", np.array([f"f{i}" for i in range(n)]),
            np.array(["a"] * n), np.full(n, 100.0), per_minute,
        )

    def test_busiest_window(self, trace):
        start = find_busiest_window(trace, 10)
        assert 40 <= start <= 49 or start == 80 - 9  # plateau or burst
        # the plateau sums 6*30*10=1800 vs burst 400+... plateau wins
        assert start == 40

    def test_quietest_window(self, trace):
        assert find_quietest_window(trace, 10) == 100

    def test_burstiest_window_catches_spike(self, trace):
        start = find_burstiest_window(trace, 10)
        assert start <= 80 < start + 10

    def test_window_stats(self, trace):
        stats = window_stats(trace, 40, 10)
        assert stats["total_invocations"] == 6 * 30 * 10
        assert stats["busiest_minute"] == 180
        assert stats["active_functions"] == 6
        assert stats["active_fraction"] == 1.0

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            find_busiest_window(trace, 0)
        with pytest.raises(ValueError):
            find_busiest_window(trace, 10_000)
        with pytest.raises(ValueError, match="at least 2"):
            find_burstiest_window(trace, 1)

    def test_minute_range_integration(self, trace):
        """Window finder output feeds the Minute Range pipeline directly."""
        from repro.core import ShrinkRay
        from repro.workloads import Workload, WorkloadPool

        pool = WorkloadPool([Workload("w:0", "fam", {}, 100.0, 32.0)])
        start = find_busiest_window(trace, 10)
        sr = ShrinkRay(time_mode="minute-range", range_start_minute=start)
        spec = sr.run(trace, pool, max_rps=1.0, duration_minutes=10,
                      seed=0)
        assert spec.duration_minutes == 10
