"""Round-trip tests for Azure-schema CSV IO."""

import numpy as np
import pytest

from repro.traces import Trace, dump_azure_day, load_azure_day
from repro.traces.io import (
    read_durations_csv,
    read_invocations_csv,
    read_memory_csv,
    write_durations_csv,
    write_invocations_csv,
    write_memory_csv,
)


@pytest.fixture
def trace():
    rng = np.random.default_rng(0)
    n, minutes = 6, 20
    return Trace(
        name="io-test",
        function_ids=np.array([f"f{i}" for i in range(n)]),
        app_ids=np.array(["a0", "a0", "a1", "a1", "a2", "a2"]),
        durations_ms=rng.uniform(5, 5000, n),
        per_minute=rng.integers(0, 100, (n, minutes)).astype(np.int32),
        app_memory_mb={"a0": 100.0, "a1": 200.0, "a2": 300.0},
    )


class TestRoundTrip:
    def test_full_day_roundtrip(self, trace, tmp_path):
        dump_azure_day(trace, tmp_path)
        loaded = load_azure_day(tmp_path, name="io-test")
        assert loaded.n_functions == trace.n_functions
        # order may be preserved by construction; compare by id
        idx = {f: i for i, f in enumerate(loaded.function_ids)}
        for i, f in enumerate(trace.function_ids):
            j = idx[f]
            np.testing.assert_array_equal(
                loaded.per_minute[j], trace.per_minute[i]
            )
            assert loaded.durations_ms[j] == pytest.approx(
                trace.durations_ms[i], rel=1e-5
            )
        assert loaded.app_memory_mb == pytest.approx(trace.app_memory_mb)

    def test_invocations_roundtrip(self, trace, tmp_path):
        p = tmp_path / "inv.csv"
        write_invocations_csv(trace, p)
        apps, fns, matrix = read_invocations_csv(p)
        np.testing.assert_array_equal(fns, trace.function_ids)
        np.testing.assert_array_equal(matrix, trace.per_minute)

    def test_durations_roundtrip(self, trace, tmp_path):
        p = tmp_path / "dur.csv"
        write_durations_csv(trace, p)
        fns, avgs = read_durations_csv(p)
        np.testing.assert_array_equal(fns, trace.function_ids)
        np.testing.assert_allclose(avgs, trace.durations_ms, rtol=1e-5)

    def test_memory_roundtrip(self, trace, tmp_path):
        p = tmp_path / "mem.csv"
        write_memory_csv(trace, p)
        assert read_memory_csv(p) == pytest.approx(trace.app_memory_mb)

    def test_load_without_memory_file(self, trace, tmp_path):
        trace.app_memory_mb = {}
        dump_azure_day(trace, tmp_path)
        loaded = load_azure_day(tmp_path)
        assert loaded.app_memory_mb == {}


class TestSchemaValidation:
    def test_bad_invocations_header(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("Wrong,Header\n1,2\n")
        with pytest.raises(ValueError, match="header"):
            read_invocations_csv(p)

    def test_ragged_invocations_row(self, tmp_path):
        p = tmp_path / "ragged.csv"
        p.write_text(
            "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
            "o,a,f,http,1\n"
        )
        with pytest.raises(ValueError, match="ragged"):
            read_invocations_csv(p)

    def test_empty_invocations(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("HashOwner,HashApp,HashFunction,Trigger,1\n")
        with pytest.raises(ValueError, match="no functions"):
            read_invocations_csv(p)

    def test_durations_missing_column(self, tmp_path):
        p = tmp_path / "dur.csv"
        p.write_text("HashFunction\nf1\n")
        with pytest.raises(ValueError, match="missing"):
            read_durations_csv(p)

    def test_memory_missing_column(self, tmp_path):
        p = tmp_path / "mem.csv"
        p.write_text("HashApp\na\n")
        with pytest.raises(ValueError, match="missing"):
            read_memory_csv(p)

    def test_load_drops_functions_without_durations(self, trace, tmp_path):
        dump_azure_day(trace, tmp_path)
        # rewrite durations with one function missing
        sub = trace.select(np.arange(1, trace.n_functions))
        write_durations_csv(sub, tmp_path / "function_durations.csv")
        loaded = load_azure_day(tmp_path)
        assert loaded.n_functions == trace.n_functions - 1
        assert "f0" not in set(loaded.function_ids)


class TestMalformedRowContext:
    """Malformed cells must name the file, 1-based line, and column
    (ISSUE 5 bugfix): a bad cell in a multi-million-row dump has to be
    locatable without a debugger."""

    def test_invocations_bad_count_cell(self, tmp_path):
        p = tmp_path / "inv.csv"
        p.write_text(
            "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n"
            "o,a,f1,http,1,2,3\n"
            "o,a,f2,http,4,oops,6\n"
        )
        with pytest.raises(ValueError) as err:
            read_invocations_csv(p)
        msg = str(err.value)
        assert str(p) in msg
        assert "line 3" in msg
        assert "column 6" in msg and "minute 2" in msg
        assert "'oops'" in msg

    def test_invocations_float_count_cell(self, tmp_path):
        # floats are not valid invocation counts; the scan must still
        # name the offending cell rather than die inside numpy
        p = tmp_path / "inv.csv"
        p.write_text(
            "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
            "o,a,f1,http,1.5,2\n"
        )
        with pytest.raises(ValueError, match=r"line 2.*column 5"):
            read_invocations_csv(p)

    def test_invocations_ragged_row_names_line(self, tmp_path):
        p = tmp_path / "inv.csv"
        p.write_text(
            "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
            "o,a,f1,http,1,2\n"
            "o,a,f2,http,1,2,3\n"
        )
        with pytest.raises(ValueError, match=r"line 3: ragged row.*'f2'"):
            read_invocations_csv(p)

    def test_durations_bad_average(self, tmp_path):
        p = tmp_path / "dur.csv"
        p.write_text(
            "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n"
            "o,a,f1,12.5,3,1,20\n"
            "o,a,f2,NOT_A_NUMBER,3,1,20\n"
        )
        with pytest.raises(ValueError) as err:
            read_durations_csv(p)
        msg = str(err.value)
        assert str(p) in msg
        assert "line 3" in msg
        assert "column Average" in msg
        assert "'NOT_A_NUMBER'" in msg

    def test_durations_missing_average_cell(self, tmp_path):
        p = tmp_path / "dur.csv"
        # DictReader yields None for the missing trailing field
        p.write_text("HashFunction,Average\nf1\n")
        with pytest.raises(ValueError, match=r"line 2.*Average is missing"):
            read_durations_csv(p)

    def test_memory_bad_value(self, tmp_path):
        p = tmp_path / "mem.csv"
        p.write_text(
            "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n"
            "o,a0,1,128\n"
            "o,a1,1,many\n"
        )
        with pytest.raises(ValueError) as err:
            read_memory_csv(p)
        msg = str(err.value)
        assert str(p) in msg
        assert "line 3" in msg
        assert "column AverageAllocatedMb" in msg
        assert "'many'" in msg
