"""Tests for workload families: correctness of the runnable bodies."""

import numpy as np
import pytest

from repro.workloads import default_registry
from repro.workloads.functionbench._aes import AES128, ctr_encrypt


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestAES:
    def test_fips197_vector(self):
        # FIPS-197 appendix C.1 known-answer test
        key = bytes(range(16))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_ctr_roundtrip(self):
        key = b"0123456789abcdef"
        data = b"the quick brown fox jumps over the lazy dog"
        enc = ctr_encrypt(key, data)
        assert enc != data
        assert ctr_encrypt(key, enc) == data  # CTR is an involution

    def test_ctr_handles_partial_block(self):
        key = b"k" * 16
        for size in (1, 15, 16, 17, 33):
            data = bytes(range(size % 256)) * (size // max(size % 256, 1) + 1)
            data = data[:size]
            assert len(ctr_encrypt(key, data)) == size

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError, match="16 bytes"):
            AES128(b"short")

    def test_bad_block_rejected(self):
        with pytest.raises(ValueError, match="16 bytes"):
            AES128(b"k" * 16).encrypt_block(b"x")


class TestFamilyContracts:
    """Every family satisfies the WorkloadFamily contract."""

    def test_ten_families_registered(self, registry):
        assert len(registry) == 10
        assert registry.names() == sorted(
            ["chameleon", "cnn_serving", "image_processing", "json_serdes",
             "matmul", "lr_serving", "lr_training", "pyaes", "rnn_serving",
             "video_processing"]
        )

    def test_grids_nonempty_and_unique(self, registry):
        for family in registry:
            grid = list(family.input_grid())
            assert grid, f"{family.name} grid is empty"
            keys = [tuple(sorted(p.items())) for p in grid]
            assert len(set(keys)) == len(keys), f"{family.name} grid repeats"

    def test_estimates_positive_and_monotone_in_units(self, registry):
        for family in registry:
            grid = list(family.input_grid())
            units = np.array([family.work_units(**p) for p in grid])
            est = np.array([family.estimated_runtime_ms(**p) for p in grid])
            assert np.all(est > 0), family.name
            order = np.argsort(units)
            assert np.all(np.diff(est[order]) >= 0), (
                f"{family.name}: estimate not monotone in work units"
            )

    def test_memory_estimates_positive(self, registry):
        for family in registry:
            for p in family.input_grid():
                assert family.estimated_memory_mb(**p) > 0

    def test_workloads_have_unique_ids(self, registry):
        for family in registry:
            ws = family.workloads()
            ids = {w.workload_id for w in ws}
            assert len(ids) == len(ws)

    def test_registry_rejects_duplicates(self, registry):
        from repro.workloads import FamilyRegistry
        from repro.workloads.functionbench import PyAES

        r = FamilyRegistry()
        r.register(PyAES())
        with pytest.raises(ValueError, match="duplicate"):
            r.register(PyAES())

    def test_registry_unknown_name(self, registry):
        with pytest.raises(KeyError, match="unknown workload family"):
            registry.get("nope")


SMALL_PARAMS = {
    "chameleon": {"rows": 20, "cols": 4},
    "cnn_serving": {"side": 16, "channels": 4},
    "image_processing": {"side": 32, "ops": 4},
    "json_serdes": {"n_records": 16, "fields": 4, "roundtrips": 2},
    "matmul": {"n": 16, "reps": 2},
    "lr_serving": {"batch": 32, "features": 8},
    "lr_training": {"n_samples": 64, "features": 8, "iterations": 10},
    "pyaes": {"length": 64, "rounds": 2},
    "rnn_serving": {"seq_len": 4, "hidden": 16},
    "video_processing": {"frames": 3, "side": 16},
}


class TestExecution:
    """The bodies genuinely run and are deterministic under a seed."""

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_runs(self, registry, name):
        family = registry.get(name)
        result = family.run(np.random.default_rng(0), **SMALL_PARAMS[name])
        assert result is not None

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_deterministic(self, registry, name):
        family = registry.get(name)
        a = family.run(np.random.default_rng(5), **SMALL_PARAMS[name])
        b = family.run(np.random.default_rng(5), **SMALL_PARAMS[name])
        assert a == b

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_rejects_nonpositive_params(self, registry, name):
        family = registry.get(name)
        params = dict(SMALL_PARAMS[name])
        key = next(iter(params))
        params[key] = 0
        with pytest.raises(ValueError):
            family.prepare(np.random.default_rng(0), **params)

    def test_lr_training_converges(self, registry):
        # GD on separable data should find a usable separator.
        family = registry.get("lr_training")
        rng = np.random.default_rng(0)
        x, y, iters = family.prepare(rng, n_samples=500, features=8,
                                     iterations=300)
        norm = family.execute((x, y, iters))
        assert norm > 0.1  # weights moved away from zero

    def test_json_serdes_roundtrip_preserves(self, registry):
        family = registry.get("json_serdes")
        payload = family.prepare(np.random.default_rng(1), n_records=8,
                                 fields=4, roundtrips=1)
        doc, _ = payload
        size = family.execute(payload)
        assert size > 0

    def test_image_processing_preserves_shape_through_rot(self, registry):
        family = registry.get("image_processing")
        payload = family.prepare(np.random.default_rng(2), side=24, ops=8)
        total = family.execute(payload)
        assert total > 0
