"""Setuptools shim.

Kept so `python setup.py develop` works on environments without the `wheel`
package (PEP 660 editable installs need it); all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
